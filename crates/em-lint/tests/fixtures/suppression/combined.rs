// Fixture (linted as crates/em-serve/src/json.rs): suppressions are
// rule-specific — allowing one rule on a line does not silence another.
// Both fns are reached from the `read_request` root so the graph-based
// panic rule engages.

/// Fixture function: request-path root.
pub fn read_request(v: Vec<f64>) -> Vec<f64> {
    let once = partially_suppressed(v);
    multi_rule_allow(once)
}

/// Fixture function: the line below violates BOTH float-partial-cmp and
/// panic-in-request-path; only the former is suppressed.
pub fn partially_suppressed(mut v: Vec<f64>) -> Vec<f64> {
    // em-lint: allow(float-partial-cmp) -- fixture: only the float rule is being waived here
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    //~^ panic-in-request-path
    v
}

/// Fixture function: one comment may waive several rules at once.
pub fn multi_rule_allow(mut v: Vec<f64>) -> Vec<f64> {
    // em-lint: allow(float-partial-cmp, panic-in-request-path) -- fixture: both rules waived with one justification
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v
}
