// Fixture (linted as crates/core/src/fixture.rs): explicit seeds and
// test-only timing are fine.

/// Fixture function.
pub fn derived_seed(base: u64, index: usize) -> u64 {
    base.wrapping_add(index as u64).wrapping_mul(0x9E37_79B9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn tests_may_time_things() {
        let start = Instant::now();
        assert_eq!(derived_seed(1, 0), 0x9E37_79B9 + 0x9E37_79B9 * 0);
        assert!(start.elapsed().as_secs() < 60);
    }
}
