// Fixture (linted as crates/em-obs/src/fixture.rs): `em-obs` is the one
// sanctioned clock-reading crate inside the pipeline — its spans measure
// stage durations without feeding seeds or scores (DESIGN.md §10).

use std::time::Instant;

/// Fixture function.
pub fn span_elapsed_nanos(enabled: bool) -> u64 {
    let start = enabled.then(Instant::now);
    start.map_or(0, |s| s.elapsed().as_nanos() as u64)
}
