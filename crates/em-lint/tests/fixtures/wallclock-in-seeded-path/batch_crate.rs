// Fixture (linted as crates/em-batch/src/fixture.rs): the batch pipeline
// is deliberately NOT in WALLCLOCK_CRATES — its shard files and manifest
// carry a byte-identity guarantee across kill/resume, so any ambient
// clock read in the crate is a latent determinism bug. Timing the crate
// *reports* must arrive pre-measured from `em-obs` (DESIGN.md §12).

use std::time::Instant;

/// Fixture function: stamping shard progress with the wall clock is
/// flagged — the stamp would differ between a run and its resume.
pub fn stamped_progress(shard: usize) -> String {
    let now = Instant::now(); //~ wallclock-in-seeded-path
    format!("shard {shard} at {:?}", now.elapsed())
}

/// Fixture function: the allowed shape — timings measured by `em-obs`
/// spans inside the explainers and read back as plain numbers. No clock
/// is touched here.
pub fn summarize_stage_nanos(collector: &em_obs::Collector) -> u64 {
    em_obs::Stage::all()
        .into_iter()
        .map(|stage| collector.stage_nanos(stage))
        .sum()
}
