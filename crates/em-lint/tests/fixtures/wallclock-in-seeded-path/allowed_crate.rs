// Fixture (linted as crates/bench/src/fixture.rs): benchmarks time by
// definition — the rule is scoped away from `bench` and `em-serve`.

use std::time::Instant;

/// Fixture function.
pub fn measure<F: FnOnce()>(f: F) -> std::time::Duration {
    let start = Instant::now();
    f();
    start.elapsed()
}
