// Fixture (linted as crates/core/src/fixture.rs): ambient time and thread
// identity reads inside a seeded pipeline crate.

use std::time::{Instant, SystemTime};

/// Fixture function.
pub fn timed_seed() -> u64 {
    let t = SystemTime::now() //~ wallclock-in-seeded-path
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    t ^ 0x9E37_79B9
}

/// Fixture function.
pub fn latency_in_score(x: f64) -> f64 {
    let start = Instant::now(); //~ wallclock-in-seeded-path
    let y = x * 2.0;
    y + start.elapsed().as_secs_f64()
}

/// Fixture function.
pub fn thread_dependent_jitter() -> u64 {
    let id = std::thread::current().id(); //~ wallclock-in-seeded-path
    format!("{id:?}").len() as u64
}
