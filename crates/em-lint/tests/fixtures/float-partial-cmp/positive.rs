// Fixture: every way the workspace has historically written a panicking
// float comparison. Tilde markers name the rule each line must trip.

fn sort_unwrap(mut v: Vec<f64>) -> Vec<f64> {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap()); //~ float-partial-cmp
    v
}

fn sort_expect(scores: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&i, &j| scores[j].partial_cmp(&scores[i]).expect("finite scores")); //~ float-partial-cmp
    idx
}

fn multi_line_chain(slots: &[(f64, usize)], a: usize, b: usize) -> std::cmp::Ordering {
    slots[b]
        .0
        .partial_cmp(&slots[a].0) //~ float-partial-cmp
        .expect("finite weights")
}

#[test]
fn also_flagged_in_tests() {
    let xs = [0.3f64, 0.1];
    let m = xs
        .iter()
        .max_by(|a, b| a.partial_cmp(b).unwrap()) //~ float-partial-cmp
        .copied();
    assert_eq!(m, Some(0.3));
}
