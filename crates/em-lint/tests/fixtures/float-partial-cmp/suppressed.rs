// Fixture: a justified suppression silences the finding — both trailing
// and standalone forms.

fn trailing(mut v: Vec<f64>) -> Vec<f64> {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap()); // em-lint: allow(float-partial-cmp) -- fixture: inputs validated finite upstream
    v
}

fn standalone(mut v: Vec<f64>) -> Vec<f64> {
    // em-lint: allow(float-partial-cmp) -- fixture: demonstrating standalone coverage
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v
}
