// Fixture: total or non-panicking float comparisons that must NOT be
// flagged, including the places a grep-based check would misfire.

fn total(mut v: Vec<f64>) -> Vec<f64> {
    v.sort_by(|a, b| a.total_cmp(b));
    v
}

fn option_flow(a: f64, b: f64) -> std::cmp::Ordering {
    // `partial_cmp` without a panicking adapter is fine.
    a.partial_cmp(&b).unwrap_or(std::cmp::Ordering::Equal)
}

fn in_comment_and_string() -> &'static str {
    // A comment mentioning partial_cmp(...).unwrap() is not code.
    "partial_cmp(x).unwrap() inside a string literal"
}

fn unwrap_elsewhere(v: Vec<f64>) -> f64 {
    // `.unwrap()` on something other than partial_cmp is out of scope
    // for this rule (clippy::unwrap_used draws that line).
    v.first().copied().unwrap()
}
