// Fixture: a suppression WITHOUT a reason is itself a violation and does
// not silence the underlying finding. (Caret markers bind to the
// previous line.)

fn reasonless(mut v: Vec<f64>) -> Vec<f64> {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap()); // em-lint: allow(float-partial-cmp)
    //~^ float-partial-cmp suppression-missing-reason
    v
}

fn unknown_rule(mut v: Vec<f64>) -> Vec<f64> {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap()); // em-lint: allow(no-such-rule) -- justified wrong
    //~^ float-partial-cmp unknown-rule
    v
}
