// Fixture (linted as crates/em-batch/src/fixture.rs AND as
// crates/em-codec/src/fixture.rs): both crates joined OUTPUT_CRATES with
// the batch pipeline — em-codec serializes every response byte and
// em-batch writes byte-identity-guaranteed shard files, so hash-ordered
// iteration in either would leak process-seeded order into output.

use std::collections::{BTreeMap, HashMap};

/// Fixture function: emitting manifest entries out of a HashMap would
/// order the file by hash seed, breaking resume byte-identity.
pub fn render_entries(entries: HashMap<usize, String>) -> String {
    let entries: HashMap<usize, String> = entries;
    let mut out = String::new();
    for (shard, hash) in entries.iter() {
        //~^ hashmap-iter-order
        out.push_str(&format!("{shard} {hash}\n"));
    }
    out
}

/// Fixture function: the allowed shape — a BTreeMap iterates in key
/// order, which is stable across processes.
pub fn render_entries_sorted(sorted: BTreeMap<usize, String>) -> String {
    let mut out = String::new();
    for (shard, hash) in &sorted {
        out.push_str(&format!("{shard} {hash}\n"));
    }
    out
}
