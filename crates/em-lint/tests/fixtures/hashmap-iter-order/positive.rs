// Fixture (linted as crates/core/src/fixture.rs): iterating hash-ordered
// collections in an output-producing crate.

use std::collections::{HashMap, HashSet};

/// Fixture function.
pub fn aggregate(weights: &[(String, f64)]) -> Vec<(String, f64)> {
    let mut sums: HashMap<String, f64> = HashMap::new();
    for (k, w) in weights {
        *sums.entry(k.clone()).or_insert(0.0) += w;
    }
    sums.into_iter().collect() //~ hashmap-iter-order
}

/// Fixture function.
pub fn keys_only(index: HashMap<String, usize>) -> Vec<String> {
    let tracked: HashMap<String, usize> = index;
    tracked.keys().cloned().collect() //~ hashmap-iter-order
}

/// Fixture function.
pub fn for_loop_over_set(items: &[u32]) -> u32 {
    let seen: HashSet<u32> = items.iter().copied().collect();
    let mut acc = 0;
    for v in &seen {
        //~^ hashmap-iter-order
        acc ^= v;
    }
    acc
}

/// Fixture function.
pub fn values_sum(by_token: HashMap<u64, Vec<f64>>) -> f64 {
    let by_token: HashMap<u64, Vec<f64>> = by_token;
    let mut total = 0.0;
    for ws in by_token.values() {
        //~^ hashmap-iter-order
        total += ws.iter().sum::<f64>();
    }
    total
}
