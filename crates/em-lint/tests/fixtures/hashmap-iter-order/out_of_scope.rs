// Fixture (linted as crates/em-par/src/fixture.rs): `em-par` only moves
// closures onto threads and never produces user-visible values itself,
// so the iteration-order rule does not apply here at all.

use std::collections::HashMap;

/// Fixture function.
pub fn qgram_profile(s: &str) -> usize {
    let mut counts: HashMap<&str, usize> = HashMap::new();
    for i in 0..s.len().saturating_sub(1) {
        *counts.entry(&s[i..i + 2]).or_insert(0) += 1;
    }
    counts.values().sum()
}
