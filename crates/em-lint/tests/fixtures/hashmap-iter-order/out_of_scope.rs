// Fixture (linted as crates/em-text/src/fixture.rs): `em-text` computes
// order-free similarity scores and is not an output-producing crate, so
// the iteration-order rule does not apply here at all.

use std::collections::HashMap;

/// Fixture function.
pub fn qgram_profile(s: &str) -> usize {
    let mut counts: HashMap<&str, usize> = HashMap::new();
    for i in 0..s.len().saturating_sub(1) {
        *counts.entry(&s[i..i + 2]).or_insert(0) += 1;
    }
    counts.values().sum()
}
