// Fixture (linted as crates/core/src/fixture.rs): hash collections used
// in order-insensitive ways, and ordered alternatives — none flagged.

use std::collections::{BTreeMap, HashMap, HashSet};

/// Fixture function.
pub fn btree_iteration_is_ordered(weights: &[(String, f64)]) -> Vec<(String, f64)> {
    let mut sums: BTreeMap<String, f64> = BTreeMap::new();
    for (k, w) in weights {
        *sums.entry(k.clone()).or_insert(0.0) += w;
    }
    sums.into_iter().collect()
}

/// Fixture function.
pub fn membership_checks_are_order_free(items: &[u32]) -> bool {
    let seen: HashSet<u32> = items.iter().copied().collect();
    seen.contains(&7) && !seen.is_empty() && seen.len() > 1
}

/// Fixture function.
pub fn order_free_reduction(items: &[u32]) -> usize {
    // Building the set and asking for its size never observes order.
    let distinct: HashSet<u32> = items.iter().copied().collect();
    distinct.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_may_iterate_hash_maps() {
        let mut m: HashMap<u32, u32> = HashMap::new();
        m.insert(1, 2);
        let vs: Vec<u32> = m.values().copied().collect();
        assert_eq!(vs, vec![2]);
    }
}
