// Fixture (linted as crates/em-text/src/fixture.rs AND as
// crates/em-matchers/src/fixture.rs): the similarity and kernel crates
// became output-producing when the prepared scoring kernel moved
// probability computation into them, so hash-ordered iteration is
// flagged there exactly as in `core`.

use std::collections::{HashMap, HashSet};

/// Fixture function: summing TF-IDF weights in hash order would make the
/// cosine's accumulation order process-seeded.
pub fn weight_sum(weights: HashMap<String, f64>) -> f64 {
    let weights: HashMap<String, f64> = weights;
    let mut total = 0.0;
    for w in weights.values() {
        //~^ hashmap-iter-order
        total += w;
    }
    total
}

/// Fixture function: collecting interned ids out of a set loses the
/// sorted order the kernel's merge-joins rely on.
pub fn collect_ids(ids: &[u32]) -> Vec<u32> {
    let distinct: HashSet<u32> = ids.iter().copied().collect();
    distinct.into_iter().collect() //~ hashmap-iter-order
}
