// Fixture (linted as crates/em-route/src/router.rs): a routing decision
// tainted by an ambient clock, with no declared sanitizer on the path.
// The real router concentrates its cooldown clock reads in
// `HealthTable::now_ms`, a declared `nondet-taint` barrier; this fixture
// shows the shape the barrier exists to forbid — a proxy handler whose
// backend choice (and therefore whose `X-Backend` attribution and
// failover order) wobbles with the wall clock, one helper hop down.

use std::time::Instant;

/// Fixture function: determinism sink (router proxy handler).
pub fn proxy_explain() -> usize {
    pick_backend(3)
}

/// Fixture function: innocent-looking intermediary — no source tokens.
fn pick_backend(n: usize) -> usize {
    clock_salt() % n
}

/// Fixture function: the buried source. Unlike `HealthTable::now_ms`
/// this carries no `sanitize(nondet-taint)` declaration, so the walk
/// from `proxy_explain` reaches the clock and reports it.
fn clock_salt() -> usize {
    let t = Instant::now(); //~ nondet-taint
    t.elapsed().subsec_nanos() as usize
}

/// Fixture function: also reads the clock, but only `proxy_*` sinks
/// anchor traversal — an admin endpoint is not a determinism sink.
pub fn ring_report() -> usize {
    let t = Instant::now();
    t.elapsed().subsec_nanos() as usize
}
