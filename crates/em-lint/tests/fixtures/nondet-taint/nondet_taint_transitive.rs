// Fixture (linted as crates/em-serve/src/server.rs): an ambient clock
// two helper hops below a determinism sink. The v1 rule
// (`wallclock-in-seeded-path`) exempted the whole em-serve crate by
// path, so this exact source was invisible; v2 walks the call graph
// forward from `handle_explain` and reports it with the witness chain.
// The golden suite re-runs the v1 logic over this file to prove it
// stays silent.

use std::time::Instant;

/// Fixture function: determinism sink (serve handler).
pub fn handle_explain() -> u64 {
    seed_material()
}

/// Fixture function: innocent-looking intermediary — no source tokens.
fn seed_material() -> u64 {
    jitter() ^ 0x9E37_79B9
}

/// Fixture function: the buried source.
fn jitter() -> u64 {
    let t = Instant::now(); //~ nondet-taint
    t.elapsed().as_nanos() as u64
}

/// Fixture function: also reads the clock, but nothing on a sink path
/// calls it — reachability, not file path, decides scope.
pub fn offline_profiler() -> u64 {
    let t = Instant::now();
    t.elapsed().as_nanos() as u64
}
