// Fixture (linted as crates/em-serve/src/server.rs): a declared
// sanitizer is a taint barrier — traversal stops at the annotated fn
// and never enters its body, so the clock inside it is not reported.
// This is the mechanism that keeps em-obs's sanctioned observability
// clock out of seeded-path reports.

use std::time::Instant;

/// Fixture function: determinism sink (serve handler).
pub fn handle_explain() -> u64 {
    observe_stage()
}

// em-lint: sanitize(nondet-taint) -- fixture: sanctioned observability clock; durations feed metrics only, never seeds or output bytes
fn observe_stage() -> u64 {
    let t = Instant::now();
    t.elapsed().as_nanos() as u64
}
