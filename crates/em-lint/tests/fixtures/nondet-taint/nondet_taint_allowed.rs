// Fixture (linted as crates/em-serve/src/server.rs): taint findings
// carry the enclosing fn's declaration line as an alternate anchor, so
// one justified `allow` on the declaration covers every source site in
// the body.

use std::time::Instant;

/// Fixture function: determinism sink with a fn-level allow.
pub fn handle_explain() -> u64 { // em-lint: allow(nondet-taint) -- fixture: latency for the timing header only; never touches explanation bytes
    let start = Instant::now();
    let end = Instant::now();
    (end.duration_since(start)).as_nanos() as u64
}
