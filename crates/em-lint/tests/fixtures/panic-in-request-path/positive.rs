// Fixture (linted as crates/em-serve/src/http.rs): every panic class the
// request path must not contain.

/// Fixture function.
pub fn parse_header(raw: &str) -> (String, String) {
    let idx = raw.find(':').unwrap(); //~ panic-in-request-path
    let (name, value) = raw.split_at(idx);
    (name.to_string(), value.to_string())
}

/// Fixture function.
pub fn content_length(headers: &[(String, String)]) -> usize {
    headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .expect("content-length header") //~ panic-in-request-path
        .1
        .parse()
        .expect("numeric length") //~ panic-in-request-path
}

/// Fixture function.
pub fn first_line(buf: &[u8]) -> u8 {
    buf[0] //~ panic-in-request-path
}

/// Fixture function.
pub fn sliced(buf: &[u8], end: usize) -> &[u8] {
    &buf[..end] //~ panic-in-request-path
}

/// Fixture function.
pub fn dispatch(method: &str) -> u16 {
    match method {
        "GET" => 200,
        "POST" => 200,
        _ => unreachable!("router only forwards GET/POST"), //~ panic-in-request-path
    }
}
