// Fixture (linted as crates/em-serve/src/http.rs): every panic class
// the request path must not contain, each reachable from the
// `read_request` handler root (v2 scopes the rule by call-graph
// reachability from the handler roots, not by file path).

/// Fixture function: request-path root fanning out to the offenders.
pub fn read_request(raw: &str, buf: &[u8]) -> u16 {
    let (_name, _value) = parse_header(raw);
    let _len = content_length(&[]);
    let _first = first_line(buf);
    let _head = sliced(buf, 2);
    dispatch("GET")
}

/// Fixture function.
pub fn parse_header(raw: &str) -> (String, String) {
    let idx = raw.find(':').unwrap(); //~ panic-in-request-path
    let (name, value) = raw.split_at(idx);
    (name.to_string(), value.to_string())
}

/// Fixture function.
pub fn content_length(headers: &[(String, String)]) -> usize {
    headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .expect("content-length header") //~ panic-in-request-path
        .1
        .parse()
        .expect("numeric length") //~ panic-in-request-path
}

/// Fixture function.
pub fn first_line(buf: &[u8]) -> u8 {
    buf[0] //~ panic-in-request-path
}

/// Fixture function.
pub fn sliced(buf: &[u8], end: usize) -> &[u8] {
    &buf[..end] //~ panic-in-request-path
}

/// Fixture function.
pub fn dispatch(method: &str) -> u16 {
    match method {
        "GET" => 200,
        "POST" => 200,
        _ => unreachable!("router only forwards GET/POST"), //~ panic-in-request-path
    }
}
