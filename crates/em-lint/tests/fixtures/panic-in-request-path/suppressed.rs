// Fixture (linted as crates/em-serve/src/json.rs): proven-infallible
// panics may stay, but only behind a justified suppression.

/// Fixture function.
pub fn scan_ascii(bytes: &[u8], start: usize, pos: usize) -> &str {
    // em-lint: allow(panic-in-request-path) -- fixture: scanner guarantees start <= pos <= len over ASCII bytes
    std::str::from_utf8(&bytes[start..pos]).expect("ascii slice")
}

/// Fixture function.
pub fn out_of_scope_module_is_not_checked() {}
