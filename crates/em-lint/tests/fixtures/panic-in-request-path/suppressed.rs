// Fixture (linted as crates/em-serve/src/json.rs): proven-infallible
// panics may stay on the request path, but only behind a justified
// suppression — here reached from the `read_request` root.

/// Fixture function: request-path root.
pub fn read_request(bytes: &[u8]) -> &str {
    scan_ascii(bytes, 0, bytes.len())
}

/// Fixture function.
pub fn scan_ascii(bytes: &[u8], start: usize, pos: usize) -> &str {
    // em-lint: allow(panic-in-request-path) -- fixture: scanner guarantees start <= pos <= len over ASCII bytes
    std::str::from_utf8(&bytes[start..pos]).expect("ascii slice")
}

/// Fixture function.
pub fn out_of_scope_module_is_not_checked() {}
