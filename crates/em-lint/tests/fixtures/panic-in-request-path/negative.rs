// Fixture (linted as crates/em-serve/src/http.rs): total request
// handling — errors flow to a response, lookups use `.get`, tests may
// panic, and a panicking fn nothing on the request path calls is out
// of scope (reachability, not file path, decides).

/// Fixture function: request-path root calling only total helpers.
pub fn read_request(raw: &str, buf: &[u8]) -> Result<(), String> {
    let _header = parse_header(raw)?;
    let _first = first_line(buf);
    let _found = lookup(&[], 0);
    let _pair = array_literal_is_not_indexing();
    Ok(())
}

/// Fixture function.
pub fn parse_header(raw: &str) -> Result<(String, String), String> {
    let idx = raw.find(':').ok_or("header line without a colon")?;
    let (name, value) = raw.split_at(idx);
    Ok((name.to_string(), value.to_string()))
}

/// Fixture function.
pub fn first_line(buf: &[u8]) -> Option<u8> {
    buf.first().copied()
}

/// Fixture function.
pub fn lookup(headers: &[(String, String)], n: usize) -> Option<&(String, String)> {
    headers.get(n)
}

/// Fixture function.
pub fn array_literal_is_not_indexing() -> [u8; 2] {
    let pair = [13u8, 10u8];
    let attrs = vec![1, 2, 3];
    let _ = attrs;
    pair
}

/// Fixture function: panics, but no handler root reaches it — a debug
/// helper in a request-path file is still out of the request path.
pub fn offline_debug_dump(buf: &[u8]) -> u8 {
    buf[0]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_unwrap_and_index() {
        let (n, v) = parse_header("a: b").unwrap();
        let bytes = n.as_bytes();
        assert_eq!(bytes[0], b'a');
        assert_eq!(v.len(), 3);
    }
}
