// Fixture (linted as crates/em-serve/src/metrics.rs): metrics is not a
// request-path module, so the rule does not apply (clippy::unwrap_used
// still covers it at the crate level).

/// Fixture function.
pub fn bucket(upper_bounds: &[f64], v: f64) -> usize {
    upper_bounds
        .iter()
        .position(|&b| v <= b)
        .unwrap_or(upper_bounds.len())
}

/// Fixture function.
pub fn locked_counter(counter: &std::sync::Mutex<u64>) -> u64 {
    *counter.lock().expect("metrics mutex poisoned")
}
