// Fixture (linted as crates/em-serve/src/metrics.rs): fns no handler
// root reaches are outside the request path even inside an in-scope
// crate — the metrics renderer may lock-and-expect because only the
// scrape endpoint's thread, not a request worker, runs it here.

/// Fixture function.
pub fn bucket(upper_bounds: &[f64], v: f64) -> usize {
    upper_bounds
        .iter()
        .position(|&b| v <= b)
        .unwrap_or(upper_bounds.len())
}

/// Fixture function: panics on poisoning, but nothing reachable from a
/// handler root calls it in this file.
pub fn locked_counter(counter: &std::sync::Mutex<u64>) -> u64 {
    *counter.lock().expect("metrics mutex poisoned")
}
