// Fixture (linted as crates/em-serve/src/http.rs): a panic three
// helper hops below the `read_request` handler root. The v1 rule only
// scanned tokens inside an allowlisted set of request-path files; v2
// follows the call graph to any depth and names the witness chain in
// the message.

/// Fixture function: request-path root.
pub fn read_request(buf: &[u8]) -> u8 {
    step_one(buf)
}

/// Fixture function: hop one.
fn step_one(buf: &[u8]) -> u8 {
    step_two(buf)
}

/// Fixture function: hop two.
fn step_two(buf: &[u8]) -> u8 {
    step_three(buf)
}

/// Fixture function: the buried panic.
fn step_three(buf: &[u8]) -> u8 {
    buf.first().copied().unwrap() //~ panic-in-request-path
}
