//! Golden fixture suite for the lint engine.
//!
//! Each fixture under `tests/fixtures/<rule>/` is linted under a
//! *virtual* workspace path (so crate-scoped rules engage) and its
//! expected findings are written inline as markers, rustc-UI style:
//!
//! * `//~ <rule> [<rule>..]` — violation(s) expected on this line;
//! * `//~^ <rule> [<rule>..]` — violation(s) expected on the previous line.
//!
//! The suite also pins the two workspace-level guarantees the CI gate
//! relies on: the shipped tree is clean, and re-introducing any of the
//! four historical `partial_cmp().expect()` NaN panics is caught at its
//! exact file:line span.

use em_lint::{find_workspace_root, lint_source, lint_workspace};
use std::path::Path;

/// (fixture file, virtual workspace path it is linted under).
const FIXTURES: &[(&str, &str)] = &[
    (
        "float-partial-cmp/positive.rs",
        "crates/em-eval/src/fixture.rs",
    ),
    (
        "float-partial-cmp/negative.rs",
        "crates/em-eval/src/fixture.rs",
    ),
    (
        "float-partial-cmp/suppressed.rs",
        "crates/em-eval/src/fixture.rs",
    ),
    (
        "float-partial-cmp/reasonless.rs",
        "crates/em-eval/src/fixture.rs",
    ),
    (
        "hashmap-iter-order/positive.rs",
        "crates/core/src/fixture.rs",
    ),
    (
        "hashmap-iter-order/negative.rs",
        "crates/core/src/fixture.rs",
    ),
    (
        "hashmap-iter-order/out_of_scope.rs",
        "crates/em-par/src/fixture.rs",
    ),
    (
        "hashmap-iter-order/kernel_crates.rs",
        "crates/em-text/src/fixture.rs",
    ),
    (
        "hashmap-iter-order/kernel_crates.rs",
        "crates/em-matchers/src/fixture.rs",
    ),
    (
        "hashmap-iter-order/batch_crate.rs",
        "crates/em-batch/src/fixture.rs",
    ),
    (
        "hashmap-iter-order/batch_crate.rs",
        "crates/em-codec/src/fixture.rs",
    ),
    (
        "wallclock-in-seeded-path/positive.rs",
        "crates/core/src/fixture.rs",
    ),
    (
        "wallclock-in-seeded-path/negative.rs",
        "crates/core/src/fixture.rs",
    ),
    (
        "wallclock-in-seeded-path/allowed_crate.rs",
        "crates/bench/src/fixture.rs",
    ),
    (
        "wallclock-in-seeded-path/allowed_obs.rs",
        "crates/em-obs/src/fixture.rs",
    ),
    (
        "wallclock-in-seeded-path/batch_crate.rs",
        "crates/em-batch/src/fixture.rs",
    ),
    (
        "panic-in-request-path/positive.rs",
        "crates/em-serve/src/http.rs",
    ),
    (
        "panic-in-request-path/negative.rs",
        "crates/em-serve/src/http.rs",
    ),
    (
        "panic-in-request-path/suppressed.rs",
        "crates/em-serve/src/json.rs",
    ),
    (
        "panic-in-request-path/out_of_scope.rs",
        "crates/em-serve/src/metrics.rs",
    ),
    ("pub-item-docs/positive.rs", "crates/core/src/fixture.rs"),
    ("pub-item-docs/negative.rs", "crates/core/src/fixture.rs"),
    ("suppression/combined.rs", "crates/em-serve/src/json.rs"),
];

/// Parses `//~` / `//~^` markers into sorted `(line, rule)` expectations.
fn expected_findings(source: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (i, line) in source.lines().enumerate() {
        let lineno = i + 1;
        let Some(idx) = line.find("//~") else {
            continue;
        };
        let rest = &line[idx + 3..];
        let (target, rules) = match rest.strip_prefix('^') {
            Some(r) => (lineno - 1, r),
            None => (lineno, rest),
        };
        for rule in rules.split_whitespace() {
            out.push((target, rule.to_string()));
        }
    }
    out.sort();
    out
}

fn fixture_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

#[test]
fn fixtures_match_their_markers() {
    for (fixture, virtual_path) in FIXTURES {
        let path = fixture_dir().join(fixture);
        let source = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("reading fixture {fixture}: {e}"));
        let expected = expected_findings(&source);
        let (violations, _) = lint_source(virtual_path, &source);
        let mut actual: Vec<(usize, String)> = violations
            .iter()
            .map(|v| (v.line, v.rule.clone()))
            .collect();
        actual.sort();
        assert_eq!(
            actual, expected,
            "fixture {fixture} (as {virtual_path}): actual findings (left) \
             diverge from //~ markers (right)"
        );
    }
}

#[test]
fn suppressed_fixtures_record_suppressions() {
    for fixture in [
        "float-partial-cmp/suppressed.rs",
        "panic-in-request-path/suppressed.rs",
    ] {
        let (dir_rule, _) = fixture.split_once('/').expect("dir/file fixture id");
        let virtual_path = FIXTURES
            .iter()
            .find(|(f, _)| f == &fixture)
            .map(|(_, p)| *p)
            .expect("fixture registered");
        let source = std::fs::read_to_string(fixture_dir().join(fixture)).expect("fixture");
        let (violations, suppressed) = lint_source(virtual_path, &source);
        assert_eq!(violations, vec![], "{fixture} should be fully suppressed");
        assert!(
            suppressed > 0,
            "{fixture} should suppress at least one {dir_rule} finding"
        );
    }
}

/// The four NaN-panic sites fixed in this PR, with the exact offending
/// line restored at its original line number. Re-introducing any one of
/// them must fail the lint with the correct file:line span — the
/// acceptance criterion for the CI gate.
const REINTRODUCTIONS: &[(&str, usize, &str)] = &[
    (
        "crates/em-eval/src/kendall.rs",
        17,
        "    idx.sort_by(|&i, &j| scores[j].partial_cmp(&scores[i]).expect(\"finite scores\"));",
    ),
    (
        "crates/em-eval/src/stability.rs",
        78,
        "            sorted.sort_by(|a, b| b.1.abs().partial_cmp(&a.1.abs()).expect(\"finite\"));",
    ),
    (
        "crates/core/src/summary.rs",
        81,
        "            .partial_cmp(&a.mean_weight)\n            .expect(\"finite weights\")",
    ),
    (
        "crates/core/src/counterfactual.rs",
        111,
        "            .partial_cmp(&slots[a].weight.abs())\n            .expect(\"finite weights\")",
    ),
];

#[test]
fn reintroducing_any_fixed_nan_panic_site_is_caught_at_its_span() {
    for (file, line, snippet) in REINTRODUCTIONS {
        // Pad the snippet down to its historical line number so the span
        // assertion is exact.
        let mut source = String::new();
        for _ in 1..*line {
            source.push_str("// padding\n");
        }
        source.push_str(snippet);
        source.push('\n');
        let (violations, _) = lint_source(file, &source);
        let hit = violations
            .iter()
            .find(|v| v.rule == "float-partial-cmp")
            .unwrap_or_else(|| panic!("{file}:{line} reintroduction not caught: {violations:?}"));
        assert_eq!(hit.file, *file);
        assert_eq!(
            hit.line, *line,
            "{file}: span should point at the partial_cmp line"
        );
    }
}

/// The shipped workspace must be clean — the same invariant CI enforces
/// with `cargo run -p em-lint -- check`.
#[test]
fn shipped_workspace_is_clean() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above em-lint");
    let report = lint_workspace(&root).expect("lint workspace");
    assert!(
        report.is_clean(),
        "workspace has unsuppressed violations:\n{}",
        em_lint::report::render_human(&report)
    );
    // Sanity: the walk actually covered the tree (≥ 100 source files).
    assert!(
        report.files_checked >= 100,
        "suspiciously few files checked: {}",
        report.files_checked
    );
}
