//! Golden fixture suite for the lint engine.
//!
//! Each fixture under `tests/fixtures/<rule>/` is linted under a
//! *virtual* workspace path (so crate-scoped and graph-scoped rules
//! engage) and its expected findings are written inline as markers,
//! rustc-UI style:
//!
//! * `//~ <rule> [<rule>..]` — violation(s) expected on this line;
//! * `//~^ <rule> [<rule>..]` — violation(s) expected on the previous line.
//!
//! The suite also pins the workspace-level guarantees the CI gate
//! relies on: the shipped tree is clean under the full v2 ruleset,
//! re-introducing any historical `partial_cmp().expect()` NaN panic is
//! caught at its exact span, reordering em-batch's shipped commit
//! sequence trips `fsync-protocol-order`, and the transitive clock the
//! v1 path-allowlist rules provably missed is caught by `nondet-taint`.

use em_lint::engine::lint_files;
use em_lint::{find_workspace_root, graph_stats, lint_source, lint_workspace};
use std::path::Path;

/// (fixture file, virtual workspace path it is linted under).
const FIXTURES: &[(&str, &str)] = &[
    (
        "float-partial-cmp/positive.rs",
        "crates/em-eval/src/fixture.rs",
    ),
    (
        "float-partial-cmp/negative.rs",
        "crates/em-eval/src/fixture.rs",
    ),
    (
        "float-partial-cmp/suppressed.rs",
        "crates/em-eval/src/fixture.rs",
    ),
    (
        "float-partial-cmp/reasonless.rs",
        "crates/em-eval/src/fixture.rs",
    ),
    (
        "hashmap-iter-order/positive.rs",
        "crates/core/src/fixture.rs",
    ),
    (
        "hashmap-iter-order/negative.rs",
        "crates/core/src/fixture.rs",
    ),
    (
        "hashmap-iter-order/out_of_scope.rs",
        "crates/em-par/src/fixture.rs",
    ),
    (
        "hashmap-iter-order/kernel_crates.rs",
        "crates/em-text/src/fixture.rs",
    ),
    (
        "hashmap-iter-order/kernel_crates.rs",
        "crates/em-matchers/src/fixture.rs",
    ),
    (
        "hashmap-iter-order/batch_crate.rs",
        "crates/em-batch/src/fixture.rs",
    ),
    (
        "hashmap-iter-order/batch_crate.rs",
        "crates/em-codec/src/fixture.rs",
    ),
    (
        "nondet-taint/nondet_taint_transitive.rs",
        "crates/em-serve/src/server.rs",
    ),
    (
        "nondet-taint/nondet_taint_sanitized.rs",
        "crates/em-serve/src/server.rs",
    ),
    (
        "nondet-taint/nondet_taint_allowed.rs",
        "crates/em-serve/src/server.rs",
    ),
    (
        "nondet-taint/tainted_routing.rs",
        "crates/em-route/src/router.rs",
    ),
    (
        "fsync-protocol-order/fsync_order_violation.rs",
        "crates/em-batch/src/runner.rs",
    ),
    (
        "fsync-protocol-order/fsync_order_clean.rs",
        "crates/em-batch/src/runner.rs",
    ),
    (
        "panic-in-request-path/positive.rs",
        "crates/em-serve/src/http.rs",
    ),
    (
        "panic-in-request-path/negative.rs",
        "crates/em-serve/src/http.rs",
    ),
    (
        "panic-in-request-path/suppressed.rs",
        "crates/em-serve/src/json.rs",
    ),
    (
        "panic-in-request-path/out_of_scope.rs",
        "crates/em-serve/src/metrics.rs",
    ),
    (
        "panic-in-request-path/panic_reachable_deep.rs",
        "crates/em-serve/src/http.rs",
    ),
    ("pub-item-docs/positive.rs", "crates/core/src/fixture.rs"),
    ("pub-item-docs/negative.rs", "crates/core/src/fixture.rs"),
    ("suppression/combined.rs", "crates/em-serve/src/json.rs"),
];

/// Parses `//~` / `//~^` markers into sorted `(line, rule)` expectations.
fn expected_findings(source: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (i, line) in source.lines().enumerate() {
        let lineno = i + 1;
        let Some(idx) = line.find("//~") else {
            continue;
        };
        let rest = &line[idx + 3..];
        let (target, rules) = match rest.strip_prefix('^') {
            Some(r) => (lineno - 1, r),
            None => (lineno, rest),
        };
        for rule in rules.split_whitespace() {
            out.push((target, rule.to_string()));
        }
    }
    out.sort();
    out
}

fn fixture_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

#[test]
fn fixtures_match_their_markers() {
    for (fixture, virtual_path) in FIXTURES {
        let path = fixture_dir().join(fixture);
        let source = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("reading fixture {fixture}: {e}"));
        let expected = expected_findings(&source);
        let (violations, _) = lint_source(virtual_path, &source);
        let mut actual: Vec<(usize, String)> = violations
            .iter()
            .map(|v| (v.line, v.rule.clone()))
            .collect();
        actual.sort();
        assert_eq!(
            actual, expected,
            "fixture {fixture} (as {virtual_path}): actual findings (left) \
             diverge from //~ markers (right)"
        );
    }
}

#[test]
fn suppressed_fixtures_record_suppressions() {
    for fixture in [
        "float-partial-cmp/suppressed.rs",
        "panic-in-request-path/suppressed.rs",
        "nondet-taint/nondet_taint_allowed.rs",
    ] {
        let (dir_rule, _) = fixture.split_once('/').expect("dir/file fixture id");
        let virtual_path = FIXTURES
            .iter()
            .find(|(f, _)| f == &fixture)
            .map(|(_, p)| *p)
            .expect("fixture registered");
        let source = std::fs::read_to_string(fixture_dir().join(fixture)).expect("fixture");
        let (violations, suppressed) = lint_source(virtual_path, &source);
        assert_eq!(violations, vec![], "{fixture} should be fully suppressed");
        assert!(
            suppressed > 0,
            "{fixture} should suppress at least one {dir_rule} finding"
        );
    }
}

/// The witness chain and the sanitizer barrier are part of the rule's
/// contract, not just its message cosmetics — pin both on the
/// transitive fixture pair.
#[test]
fn taint_fixture_messages_carry_the_witness_chain() {
    let source =
        std::fs::read_to_string(fixture_dir().join("nondet-taint/nondet_taint_transitive.rs"))
            .expect("fixture");
    let (violations, _) = lint_source("crates/em-serve/src/server.rs", &source);
    let taint: Vec<_> = violations
        .iter()
        .filter(|v| v.rule == "nondet-taint")
        .collect();
    assert_eq!(taint.len(), 1, "{violations:?}");
    assert!(
        taint[0]
            .message
            .contains("handle_explain → seed_material → jitter"),
        "witness chain missing: {}",
        taint[0].message
    );
}

/// Re-implementation of the retired v1 `wallclock-in-seeded-path` rule:
/// a token scan for `Instant::now` / `SystemTime::now` /
/// `thread::current` that skips the crates on its path allowlist
/// (`bench`, `em-serve`, `em-obs`) and test lines. Kept here, not in
/// the engine, purely to *prove the miss*: the transitive-taint fixture
/// is silent under v1 and caught by v2.
fn v1_wallclock_findings(virtual_path: &str, source: &str) -> Vec<usize> {
    const V1_ALLOWLIST: &[&str] = &["bench", "em-serve", "em-obs"];
    let krate = virtual_path
        .strip_prefix("crates/")
        .and_then(|p| p.split('/').next())
        .unwrap_or("");
    if V1_ALLOWLIST.contains(&krate) {
        return Vec::new();
    }
    source
        .lines()
        .enumerate()
        .filter(|(_, l)| {
            let code = l.split("//").next().unwrap_or("");
            code.contains("Instant::now")
                || code.contains("SystemTime::now")
                || code.contains("thread::current")
        })
        .map(|(i, _)| i + 1)
        .collect()
}

/// The acceptance demonstration for the v2 taint rule: the same fixture
/// file, linted at the same virtual path, produces **zero** findings
/// under the v1 path-allowlist logic (em-serve was allowlisted
/// wholesale, so a clock reached through helpers was invisible) and a
/// `nondet-taint` violation under v2's call-graph reachability.
#[test]
fn v1_path_allowlist_misses_the_transitive_clock_v2_catches() {
    let virtual_path = "crates/em-serve/src/server.rs";
    let source =
        std::fs::read_to_string(fixture_dir().join("nondet-taint/nondet_taint_transitive.rs"))
            .expect("fixture");

    // v1: silent. The crate is on the wallclock allowlist, so the rule
    // never even scans the file — let alone follows calls into it.
    assert_eq!(
        v1_wallclock_findings(virtual_path, &source),
        Vec::<usize>::new(),
        "v1 should be blind to this file"
    );
    // …and the sources really are there for v1 to miss (same scan with
    // the allowlist ignored finds both clock reads).
    assert_eq!(
        v1_wallclock_findings("crates/core/src/x.rs", &source).len(),
        2
    );

    // v2: the sink-reachable clock is reported; the unreachable one
    // (`offline_profiler`) correctly is not.
    let (violations, _) = lint_source(virtual_path, &source);
    let taint: Vec<_> = violations
        .iter()
        .filter(|v| v.rule == "nondet-taint")
        .collect();
    assert_eq!(taint.len(), 1, "{violations:?}");
}

/// The four NaN-panic sites fixed in PR 4, with the exact offending
/// line restored at its original line number. Re-introducing any one of
/// them must fail the lint with the correct file:line span — the
/// acceptance criterion for the CI gate.
const REINTRODUCTIONS: &[(&str, usize, &str)] = &[
    (
        "crates/em-eval/src/kendall.rs",
        17,
        "    idx.sort_by(|&i, &j| scores[j].partial_cmp(&scores[i]).expect(\"finite scores\"));",
    ),
    (
        "crates/em-eval/src/stability.rs",
        78,
        "            sorted.sort_by(|a, b| b.1.abs().partial_cmp(&a.1.abs()).expect(\"finite\"));",
    ),
    (
        "crates/core/src/summary.rs",
        81,
        "            .partial_cmp(&a.mean_weight)\n            .expect(\"finite weights\")",
    ),
    (
        "crates/core/src/counterfactual.rs",
        111,
        "            .partial_cmp(&slots[a].weight.abs())\n            .expect(\"finite weights\")",
    ),
];

#[test]
fn reintroducing_any_fixed_nan_panic_site_is_caught_at_its_span() {
    for (file, line, snippet) in REINTRODUCTIONS {
        // Pad the snippet down to its historical line number so the span
        // assertion is exact.
        let mut source = String::new();
        for _ in 1..*line {
            source.push_str("// padding\n");
        }
        source.push_str(snippet);
        source.push('\n');
        let (violations, _) = lint_source(file, &source);
        let hit = violations
            .iter()
            .find(|v| v.rule == "float-partial-cmp")
            .unwrap_or_else(|| panic!("{file}:{line} reintroduction not caught: {violations:?}"));
        assert_eq!(hit.file, *file);
        assert_eq!(
            hit.line, *line,
            "{file}: span should point at the partial_cmp line"
        );
    }
}

/// Seeded reordering of the *shipped* commit sequence: swap the
/// `write_sync` and `rename_durable` calls in the real
/// `em-batch/src/runner.rs` and the protocol automaton must object; the
/// unmodified file must pass. This pins the rule to the code it exists
/// to guard, not just to synthetic fixtures.
#[test]
fn reordering_the_shipped_commit_sequence_is_caught() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above em-lint");
    let rel = "crates/em-batch/src/runner.rs";
    let shipped = std::fs::read_to_string(root.join(rel)).expect("shipped runner.rs");
    assert!(
        shipped.contains("atomic::write_sync") && shipped.contains("atomic::rename_durable"),
        "commit sequence moved; update this test alongside the protocol spec"
    );

    let fsync_violations = |source: &str| -> Vec<usize> {
        let report = lint_files(&[(rel.to_string(), source.to_string())], None);
        report
            .violations
            .iter()
            .filter(|v| v.rule == "fsync-protocol-order")
            .map(|v| v.line)
            .collect()
    };

    assert_eq!(
        fsync_violations(&shipped),
        Vec::<usize>::new(),
        "shipped commit sequence should satisfy the protocol"
    );

    let reordered = shipped
        .replace("atomic::write_sync", "atomic::__swapped")
        .replace("atomic::rename_durable", "atomic::write_sync")
        .replace("atomic::__swapped", "atomic::rename_durable");
    let lines = fsync_violations(&reordered);
    assert_eq!(
        lines.len(),
        1,
        "swapped write/rename should trip the automaton exactly once"
    );
}

/// The shipped workspace must be clean — the same invariant CI enforces
/// with `cargo run -p em-lint -- check`.
#[test]
fn shipped_workspace_is_clean() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above em-lint");
    let report = lint_workspace(&root).expect("lint workspace");
    assert!(
        report.is_clean(),
        "workspace has unsuppressed violations:\n{}",
        em_lint::report::render_human(&report)
    );
    // Sanity: the walk actually covered the tree (≥ 100 source files).
    assert!(
        report.files_checked >= 100,
        "suspiciously few files checked: {}",
        report.files_checked
    );
}

/// The `graph` subcommand's data source: the resolved workspace call
/// graph should have nodes and edges for every production crate that
/// calls anything.
#[test]
fn workspace_call_graph_resolves_nodes_and_edges() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above em-lint");
    let stats = graph_stats(&root).expect("graph stats");
    assert!(
        stats.total_fns > 200,
        "suspiciously few fns: {}",
        stats.total_fns
    );
    assert!(
        stats.total_edges > 200,
        "suspiciously few edges: {}",
        stats.total_edges
    );
    for krate in ["core", "em-lint", "em-batch", "em-serve"] {
        let cs = stats
            .crates
            .get(krate)
            .unwrap_or_else(|| panic!("crate {krate} missing from graph stats"));
        assert!(cs.fns > 0, "{krate} should contribute fns");
        assert!(cs.edges > 0, "{krate} should contribute edges");
    }
}
