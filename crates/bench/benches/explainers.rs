//! Criterion: end-to-end explanation latency per technique.
//!
//! One explanation = perturbation sampling + N record reconstructions +
//! N black-box predictions + surrogate fit. This bench tracks the cost of
//! the four techniques of the paper on a realistic product record.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use em_datagen::{DatasetId, MagellanBenchmark};
use em_entity::{EntityPair, MatchModel};
use em_eval::technique::explain_record;
use em_eval::Technique;
use em_matchers::{LogisticMatcher, MatcherConfig};
use em_par::ParallelismConfig;
use landmark_core::{LandmarkConfig, LandmarkExplainer};

fn setup() -> (em_entity::Schema, LogisticMatcher, EntityPair) {
    let dataset = MagellanBenchmark::scaled(0.05).generate(DatasetId::SWa);
    let matcher = LogisticMatcher::train(&dataset, &MatcherConfig::default());
    let record = dataset
        .records()
        .iter()
        .find(|r| !r.label)
        .expect("non-match")
        .pair
        .clone();
    (dataset.schema().clone(), matcher, record)
}

fn bench_explainers(c: &mut Criterion) {
    let (schema, matcher, record) = setup();
    let mut group = c.benchmark_group("explain_one_record");
    group.sample_size(10);
    for technique in Technique::all() {
        group.bench_with_input(
            BenchmarkId::from_parameter(technique.label()),
            &technique,
            |b, &t| {
                b.iter(|| explain_record(t, &matcher, &schema, &record, 200, 0));
            },
        );
    }
    group.finish();
}

fn bench_sample_budget(c: &mut Criterion) {
    let (schema, matcher, record) = setup();
    let mut group = c.benchmark_group("landmark_single_by_samples");
    group.sample_size(10);
    for n_samples in [100usize, 250, 500] {
        group.bench_with_input(
            BenchmarkId::from_parameter(n_samples),
            &n_samples,
            |b, &n| {
                b.iter(|| {
                    explain_record(Technique::LandmarkSingle, &matcher, &schema, &record, n, 0)
                });
            },
        );
    }
    group.finish();
}

fn bench_model_prediction(c: &mut Criterion) {
    let (schema, matcher, record) = setup();
    c.bench_function("matcher_predict_proba", |b| {
        b.iter(|| matcher.predict_proba(&schema, &record));
    });
}

/// Serial vs parallel perturbation scoring for one landmark explanation.
/// Both arms produce bit-identical explanations; only wall-clock differs.
fn bench_parallel_scoring(c: &mut Criterion) {
    let (schema, matcher, record) = setup();
    let mut group = c.benchmark_group("landmark_scoring_parallelism");
    group.sample_size(10);
    let threads = std::thread::available_parallelism().map_or(4, usize::from);
    for (label, parallelism) in [
        ("serial", ParallelismConfig::serial()),
        ("parallel", ParallelismConfig::with_threads(threads)),
    ] {
        let explainer = LandmarkExplainer::new(LandmarkConfig {
            n_samples: 500,
            parallelism,
            ..Default::default()
        });
        group.bench_with_input(BenchmarkId::from_parameter(label), &explainer, |b, ex| {
            b.iter(|| ex.explain(&matcher, &schema, &record));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_explainers,
    bench_sample_budget,
    bench_model_prediction,
    bench_parallel_scoring
);
criterion_main!(benches);
