//! Criterion: the per-stage cost of the Landmark Explanation pipeline
//! (Figure 2 of the paper): tokenization → mask sampling → pair
//! reconstruction → black-box scoring → surrogate fit.

use criterion::{criterion_group, criterion_main, Criterion};
use em_datagen::{DatasetId, MagellanBenchmark};
use em_entity::{tokenize_entity, EntitySide, MatchModel};
use em_lime::sampler::sample_masks;
use em_lime::surrogate::{fit_surrogate, SurrogateConfig};
use em_matchers::{LogisticMatcher, MatcherConfig};
use landmark_core::strategy::ResolvedStrategy;
use landmark_core::{generate_view, reconstruct_with_landmark};

fn bench_pipeline_stages(c: &mut Criterion) {
    let dataset = MagellanBenchmark::scaled(0.05).generate(DatasetId::SWa);
    let schema = dataset.schema().clone();
    let matcher = LogisticMatcher::train(&dataset, &MatcherConfig::default());
    let pair = dataset.records()[0].pair.clone();

    c.bench_function("stage_tokenize_entity", |b| {
        b.iter(|| tokenize_entity(&pair.left));
    });

    let view = generate_view(&pair, EntitySide::Left, ResolvedStrategy::DoubleEntity);
    c.bench_function("stage_generate_view_double", |b| {
        b.iter(|| generate_view(&pair, EntitySide::Left, ResolvedStrategy::DoubleEntity));
    });

    c.bench_function("stage_sample_masks_500", |b| {
        b.iter(|| sample_masks(view.tokens.len(), 500, 0));
    });

    let masks = sample_masks(view.tokens.len(), 500, 0);
    c.bench_function("stage_reconstruct_500", |b| {
        b.iter(|| {
            masks
                .iter()
                .map(|m| reconstruct_with_landmark(&pair, &view, m, schema.len()))
                .collect::<Vec<_>>()
                .len()
        });
    });

    let reconstructed: Vec<_> = masks
        .iter()
        .map(|m| reconstruct_with_landmark(&pair, &view, m, schema.len()))
        .collect();
    let mut group = c.benchmark_group("stage_model_scoring_500");
    group.sample_size(10);
    group.bench_function("predict_proba_batch", |b| {
        b.iter(|| matcher.predict_proba_batch(&schema, &reconstructed));
    });
    group.finish();

    let probs = matcher.predict_proba_batch(&schema, &reconstructed);
    c.bench_function("stage_surrogate_fit_500", |b| {
        b.iter(|| fit_surrogate(&masks, &probs, &SurrogateConfig::default()));
    });
}

criterion_group!(benches, bench_pipeline_stages);
criterion_main!(benches);
