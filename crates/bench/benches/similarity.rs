//! Criterion: the string-similarity substrate (the inner loop of every
//! black-box model call).

use criterion::{criterion_group, criterion_main, Criterion};
use em_text::monge_elkan::monge_elkan_symmetric;
use em_text::{jaccard, jaro_winkler, levenshtein, qgram_cosine, TfIdfVectorizerBuilder};

const LEFT: &str = "sonix alpha digital slr camera with lens kit dslra200w";
const RIGHT: &str = "sonix digital camera lens kit dslra200";

fn bench_char_metrics(c: &mut Criterion) {
    c.bench_function("levenshtein", |b| b.iter(|| levenshtein(LEFT, RIGHT)));
    c.bench_function("jaro_winkler", |b| b.iter(|| jaro_winkler(LEFT, RIGHT)));
    c.bench_function("qgram_cosine_q3", |b| {
        b.iter(|| qgram_cosine(LEFT, RIGHT, 3))
    });
}

fn bench_token_metrics(c: &mut Criterion) {
    let lt: Vec<&str> = LEFT.split_whitespace().collect();
    let rt: Vec<&str> = RIGHT.split_whitespace().collect();
    c.bench_function("jaccard_tokens", |b| b.iter(|| jaccard(&lt, &rt)));
    c.bench_function("monge_elkan_jw", |b| {
        b.iter(|| monge_elkan_symmetric(&lt, &rt, jaro_winkler))
    });
}

fn bench_tfidf(c: &mut Criterion) {
    let mut builder = TfIdfVectorizerBuilder::new();
    for i in 0..2000 {
        let doc: Vec<String> = (0..10)
            .map(|j| format!("token{}", (i * 7 + j * 13) % 500))
            .collect();
        builder.add_document(&doc);
    }
    let v = builder.build();
    let lt: Vec<&str> = LEFT.split_whitespace().collect();
    let rt: Vec<&str> = RIGHT.split_whitespace().collect();
    c.bench_function("tfidf_cosine", |b| b.iter(|| v.cosine(&lt, &rt)));
}

criterion_group!(
    benches,
    bench_char_metrics,
    bench_token_metrics,
    bench_tfidf
);
criterion_main!(benches);
