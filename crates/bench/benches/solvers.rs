//! Criterion: the linear-model solvers behind the surrogate and the EM
//! model (ridge vs lasso ablation from DESIGN.md §5, plus logistic
//! regression training).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use em_linalg::lasso::{lasso_fit, LassoConfig};
use em_linalg::logistic::{LogisticConfig, LogisticModel};
use em_linalg::ridge::{ridge_fit, RidgeConfig};
use em_linalg::Matrix;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

fn random_problem(n: usize, d: usize, seed: u64) -> (Matrix, Vec<f64>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|_| {
            (0..d)
                .map(|_| if rng.gen_bool(0.5) { 1.0 } else { 0.0 })
                .collect()
        })
        .collect();
    let beta: Vec<f64> = (0..d).map(|_| rng.gen_range(-0.5..0.5)).collect();
    let y: Vec<f64> = rows
        .iter()
        .map(|r| r.iter().zip(&beta).map(|(x, b)| x * b).sum::<f64>() + rng.gen_range(-0.05..0.05))
        .collect();
    let w: Vec<f64> = (0..n).map(|_| rng.gen_range(0.1..1.0)).collect();
    (
        Matrix::from_rows(&rows).expect("rows share one width"),
        y,
        w,
    )
}

fn bench_surrogate_solvers(c: &mut Criterion) {
    // Shapes matching a real surrogate fit: 500 samples, 20-60 tokens.
    let mut group = c.benchmark_group("surrogate_solver");
    for d in [20usize, 40, 60] {
        let (x, y, w) = random_problem(500, d, 42);
        group.bench_with_input(BenchmarkId::new("ridge", d), &d, |b, _| {
            b.iter(|| ridge_fit(&x, &y, &w, &RidgeConfig::default()).expect("ridge fit"));
        });
        group.bench_with_input(BenchmarkId::new("lasso", d), &d, |b, _| {
            b.iter(|| lasso_fit(&x, &y, &w, &LassoConfig::default()).expect("lasso fit"));
        });
    }
    group.finish();
}

fn bench_logistic_training(c: &mut Criterion) {
    let mut group = c.benchmark_group("logistic_train");
    group.sample_size(10);
    for n in [200usize, 1000] {
        let (x, y, _) = random_problem(n, 5, 7);
        let labels: Vec<bool> = y.iter().map(|&v| v > 0.0).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                LogisticModel::fit(
                    &x,
                    &labels,
                    &LogisticConfig {
                        max_iter: 200,
                        ..Default::default()
                    },
                )
                .expect("logistic fit")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_surrogate_solvers, bench_logistic_training);
criterion_main!(benches);
