//! Shared plumbing for the table-regenerating binaries.
//!
//! Every binary reads three environment variables so the paper-scale runs
//! and quick smoke runs share one code path:
//!
//! * `SCALE` — benchmark size multiplier in `(0, 1]` (default `0.25`);
//! * `RECORDS` — records sampled per label (default `100`, the paper's
//!   setting);
//! * `SAMPLES` — perturbation samples per explanation (default `500`);
//! * `DATASETS` — comma-separated short names (e.g. `S-BR,S-IA`) to
//!   restrict the run (default: all twelve);
//! * `THREADS` — worker threads for per-record explanation (`0` = one per
//!   core, `1` = serial; default `0`). Results are identical for any value.

#![forbid(unsafe_code)]

use em_datagen::DatasetId;
use em_eval::{EvalConfig, ParallelismConfig};

/// Reads an environment variable with a fallback parse.
fn env_or<T: std::str::FromStr>(key: &str, default: T) -> T {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Builds the experiment configuration from the environment.
pub fn config_from_env() -> EvalConfig {
    EvalConfig {
        scale: env_or("SCALE", 0.25f64).clamp(0.001, 1.0),
        n_records_per_label: env_or("RECORDS", 100usize),
        n_samples: env_or("SAMPLES", 500usize),
        parallelism: ParallelismConfig::with_threads(env_or("THREADS", 0usize)),
        ..Default::default()
    }
}

/// The datasets selected by the `DATASETS` environment variable (all
/// twelve when unset or unparseable).
pub fn datasets_from_env() -> Vec<DatasetId> {
    match std::env::var("DATASETS") {
        Ok(list) => {
            let chosen: Vec<DatasetId> = list
                .split(',')
                .filter_map(|name| {
                    let name = name.trim().to_uppercase();
                    DatasetId::all()
                        .into_iter()
                        .find(|id| id.short_name() == name)
                })
                .collect();
            if chosen.is_empty() {
                DatasetId::all().to_vec()
            } else {
                chosen
            }
        }
        Err(_) => DatasetId::all().to_vec(),
    }
}

/// Prints the banner every binary shows before running.
pub fn print_banner(table: &str, config: &EvalConfig, datasets: &[DatasetId]) {
    println!(
        "# {table} — scale={}, records/label={}, samples/explanation={}, datasets={}",
        config.scale,
        config.n_records_per_label,
        config.n_samples,
        datasets
            .iter()
            .map(|d| d.short_name())
            .collect::<Vec<_>>()
            .join(",")
    );
    println!("# (set SCALE=1.0 RECORDS=100 SAMPLES=500 for the full paper-scale run)\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let c = config_from_env();
        assert!(c.scale > 0.0 && c.scale <= 1.0);
        assert!(c.n_samples > 0);
    }

    #[test]
    fn dataset_filter_falls_back_to_all() {
        // No env var set in tests -> all twelve.
        assert_eq!(datasets_from_env().len(), 12);
    }
}
