//! Ablation: kernel width of the exponential proximity kernel.
//!
//! DESIGN.md §5(1): LIME's default width (0.25 over cosine distances in
//! [0, 1]) concentrates the surrogate on light perturbations. Sweeping the
//! width trades locality against sample efficiency; this binary reports
//! the token-based fidelity per width.
//!
//! Run with: `cargo run --release -p bench --bin ablation_kernel`

use em_datagen::MagellanBenchmark;
use em_entity::{EntityPair, MatchModel, SplitConfig};
use em_eval::removal::remove_tokens;
use em_lime::surrogate::{SurrogateConfig, SurrogateSolver};
use em_lime::{LimeConfig, LimeExplainer};
use em_matchers::{LogisticMatcher, MatcherConfig};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn main() {
    let base = bench::config_from_env();
    let id = bench::datasets_from_env()[0];
    println!(
        "# Ablation: kernel width (dataset {}, LIME surrogate fidelity)\n",
        id.short_name()
    );

    let benchmark = MagellanBenchmark {
        scale: base.scale,
        ..Default::default()
    };
    let dataset = benchmark.generate(id);
    let (train, _) = dataset.train_test_split(&SplitConfig::default());
    let matcher = LogisticMatcher::train(&train, &MatcherConfig::default());
    let schema = dataset.schema();

    let records: Vec<&EntityPair> = dataset
        .sample_by_label(true, base.n_records_per_label.min(20), 3)
        .into_iter()
        .map(|r| &r.pair)
        .chain(
            dataset
                .sample_by_label(false, base.n_records_per_label.min(20), 3)
                .into_iter()
                .map(|r| &r.pair),
        )
        .collect();

    println!("{:>8} {:>10} {:>10}", "width", "mean_r2", "mae");
    for width in [0.05, 0.1, 0.25, 0.5, 1.0, 5.0] {
        let cfg = LimeConfig {
            n_samples: base.n_samples,
            surrogate: SurrogateConfig {
                kernel_width: width,
                solver: SurrogateSolver::Ridge { lambda: 1.0 },
            },
            seed: 7,
            parallelism: base.parallelism,
        };
        let explainer = LimeExplainer::new(cfg);
        let mut r2_sum = 0.0;
        let mut errs: Vec<f64> = Vec::new();
        let mut rng = StdRng::seed_from_u64(99);
        for pair in &records {
            let e = explainer.explain(&matcher, schema, pair);
            r2_sum += e.surrogate_r2;
            if e.token_weights.is_empty() {
                continue;
            }
            // One 25% removal draw per record.
            let mut idx: Vec<usize> = (0..e.token_weights.len()).collect();
            idx.shuffle(&mut rng);
            let k = (e.token_weights.len() / 4).max(1);
            let removed: Vec<(em_entity::EntitySide, em_entity::Token)> = idx[..k]
                .iter()
                .map(|&i| (e.token_weights[i].side, e.token_weights[i].token.clone()))
                .collect();
            let weight_sum: f64 = idx[..k].iter().map(|&i| e.token_weights[i].weight).sum();
            let refs: Vec<&(em_entity::EntitySide, em_entity::Token)> = removed.iter().collect();
            let modified = remove_tokens(pair, schema, &refs);
            let actual = matcher.predict_proba(schema, &modified);
            errs.push((actual - (e.model_prediction - weight_sum)).abs());
        }
        let mae = errs.iter().sum::<f64>() / errs.len().max(1) as f64;
        println!(
            "{:>8.2} {:>10.3} {:>10.3}",
            width,
            r2_sum / records.len() as f64,
            mae
        );
    }
    println!("\nExpected: very narrow widths overweight near-identity samples (noisy fit);");
    println!("very wide widths avering over heavy perturbations (less local). The default");
    println!("0.25 sits in the flat middle of the fidelity curve.");
}
