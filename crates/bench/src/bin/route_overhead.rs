//! Router overhead and cache-affinity report for `em-route`.
//!
//! Spawns two serving topologies over the same trained matcher:
//!
//! * **direct** — one `em-serve` backend, driven straight;
//! * **routed** — three backends behind the `em-route` consistent-hash
//!   router, driven through the router.
//!
//! Each topology serves the same request set twice (cold, then cached).
//! The report gives per-phase p50/p99, the router-added p50 on the cached
//! path (where proxy cost is not drowned by explanation compute), and the
//! cache-affinity hit rate: the fraction of repeated requests through the
//! router answered from a backend's warm cache. With keyed routing that
//! rate must be at least the single-backend baseline — the ring sends a
//! repeat to the same node that cached it.
//!
//! Reads `SCALE`/`SAMPLES`/`DATASETS` plus `REQUESTS` (default 20).
//!
//! Run with: `cargo run --release -p bench --bin route_overhead`

use std::net::SocketAddr;
use std::time::Instant;

use em_datagen::MagellanBenchmark;
use em_entity::{EntityPair, Schema};
use em_matchers::{LogisticMatcher, MatcherConfig};
use em_par::ParallelismConfig;
use em_route::{BackendSpec, Router, RouterConfig};
use em_serve::client;
use em_serve::json::Value;
use em_serve::{ExplainOptions, Server, ServerConfig};

fn explain_body(schema: &Schema, pair: &EntityPair, n_samples: usize, seed: u64) -> String {
    let entity = |e: &em_entity::Entity| {
        Value::Object(
            (0..schema.len())
                .map(|i| (schema.name(i).to_string(), Value::string(e.value(i))))
                .collect(),
        )
    };
    Value::object(vec![
        (
            "pair",
            Value::object(vec![
                ("left", entity(&pair.left)),
                ("right", entity(&pair.right)),
            ]),
        ),
        ("explainer", Value::string("landmark")),
        (
            "config",
            Value::object(vec![
                ("n_samples", n_samples.into()),
                ("seed", Value::Number(seed as f64)),
            ]),
        ),
    ])
    .to_json()
}

fn spawn_backend(
    schema: &Schema,
    matcher: &LogisticMatcher,
    cache: usize,
) -> em_serve::ServerHandle {
    Server::bind(
        "127.0.0.1:0",
        schema.clone(),
        Box::new(matcher.clone()),
        ServerConfig {
            parallelism: ParallelismConfig::auto(),
            // One exact-LRU shard sized to the request set, so repeats
            // are hits whenever they reach the same backend.
            cache_capacity: cache.max(1),
            cache_shards: 1,
            defaults: ExplainOptions::default(),
            ..Default::default()
        },
    )
    .expect("bind backend")
    .spawn()
}

/// Drives one pass; returns (latencies µs, bodies, cache hits observed).
fn drive(addr: SocketAddr, bodies: &[String]) -> (Vec<u64>, Vec<String>, usize) {
    let mut latencies = Vec::with_capacity(bodies.len());
    let mut responses = Vec::with_capacity(bodies.len());
    let mut hits = 0usize;
    for body in bodies {
        let start = Instant::now();
        let resp = client::request(addr, "POST", "/explain", body).expect("request failed");
        latencies.push(u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX));
        assert_eq!(resp.status, 200, "{}", resp.body);
        if resp.header("x-cache") == Some("hit") {
            hits += 1;
        }
        responses.push(resp.body);
    }
    (latencies, responses, hits)
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn phase_report(name: &str, latencies: &mut [u64]) -> Value {
    latencies.sort_unstable();
    let total_us: u64 = latencies.iter().sum();
    let rps = latencies.len() as f64 / (total_us as f64 / 1e6);
    Value::object(vec![
        ("phase", Value::string(name)),
        ("requests", latencies.len().into()),
        ("requests_per_sec", rps.into()),
        ("p50_us", Value::Number(percentile(latencies, 0.5) as f64)),
        ("p99_us", Value::Number(percentile(latencies, 0.99) as f64)),
    ])
}

fn main() {
    let base = bench::config_from_env();
    let id = bench::datasets_from_env()[0];
    let n_requests: usize = std::env::var("REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20);

    let dataset = MagellanBenchmark {
        scale: base.scale,
        ..Default::default()
    }
    .generate(id);
    let schema = dataset.schema().clone();
    let matcher = LogisticMatcher::train(&dataset, &MatcherConfig::default());

    let records = dataset.records();
    let bodies: Vec<String> = (0..n_requests)
        .map(|i| {
            let pair = &records[i % records.len()].pair;
            explain_body(&schema, pair, base.n_samples, base.seed + i as u64)
        })
        .collect();

    // Baseline: one backend, driven directly.
    let direct = spawn_backend(&schema, &matcher, n_requests);
    let (mut direct_cold, direct_bodies, _) = drive(direct.addr(), &bodies);
    let (mut direct_cached, direct_cached_bodies, direct_hits) = drive(direct.addr(), &bodies);
    client::request(direct.addr(), "POST", "/shutdown", "").expect("shutdown direct");
    direct.join();
    let baseline_hit_rate = direct_hits as f64 / n_requests as f64;

    // Routed: three backends behind the consistent-hash router.
    let backends: Vec<_> = (0..3)
        .map(|_| spawn_backend(&schema, &matcher, n_requests))
        .collect();
    let specs: Vec<BackendSpec> = backends
        .iter()
        .enumerate()
        .map(|(i, b)| BackendSpec::new(format!("b{i}"), b.addr()))
        .collect();
    let router = Router::bind(
        "127.0.0.1:0",
        schema.clone(),
        specs,
        RouterConfig {
            parallelism: ParallelismConfig::auto(),
            ..Default::default()
        },
    )
    .expect("bind router")
    .spawn();

    let (mut routed_cold, routed_bodies, _) = drive(router.addr(), &bodies);
    let (mut routed_cached, routed_cached_bodies, routed_hits) = drive(router.addr(), &bodies);
    let affinity_hit_rate = routed_hits as f64 / n_requests as f64;

    client::request(router.addr(), "POST", "/shutdown", "").expect("shutdown router");
    router.join();
    for backend in backends {
        client::request(backend.addr(), "POST", "/shutdown", "").expect("shutdown backend");
        backend.join();
    }

    let identical = direct_bodies == routed_bodies
        && direct_cached_bodies == routed_cached_bodies
        && direct_bodies == direct_cached_bodies;

    // Router-added latency is read off the cached path: both topologies
    // answer from a warm cache there, so the difference is proxy cost.
    routed_cached.sort_unstable();
    direct_cached.sort_unstable();
    let router_added_p50_us =
        percentile(&routed_cached, 0.5) as i64 - percentile(&direct_cached, 0.5) as i64;

    let report = Value::object(vec![
        ("dataset", Value::string(id.short_name())),
        ("n_samples", base.n_samples.into()),
        ("backends", 3usize.into()),
        ("identical_bodies", identical.into()),
        ("baseline_cache_hit_rate", baseline_hit_rate.into()),
        ("affinity_cache_hit_rate", affinity_hit_rate.into()),
        (
            "router_added_p50_us",
            Value::Number(router_added_p50_us as f64),
        ),
        (
            "phases",
            Value::Array(vec![
                phase_report("direct_cold", &mut direct_cold),
                phase_report("direct_cached", &mut direct_cached),
                phase_report("routed_cold", &mut routed_cold),
                phase_report("routed_cached", &mut routed_cached),
            ]),
        ),
    ]);
    println!("{}", report.to_json());
    assert!(
        identical,
        "routed bodies must be byte-identical to the direct run"
    );
    assert!(
        affinity_hit_rate >= baseline_hit_rate,
        "keyed routing must preserve the single-backend hit rate: \
         affinity {affinity_hit_rate} < baseline {baseline_hit_rate}"
    );
}
