//! Naive-vs-prepared scoring kernel speedup report.
//!
//! Explains the same records twice with a **serial** `LandmarkExplainer`:
//!
//! 1. **naive** — through [`NaiveOnly`], a wrapper that forwards only
//!    `predict_proba` and therefore falls back to the default
//!    reconstruct-then-extract scorer (`FallbackScorer`);
//! 2. **kernel** — through the matcher itself, whose `prepare_scorer`
//!    override precomputes per-record state once and scores each mask
//!    incrementally.
//!
//! The two runs must produce bit-identical explanations (the report
//! verifies every token weight and intercept and exits non-zero on any
//! difference); only wall-clock differs. The measured single-thread
//! speedup is what `perf_gate` guards against regression in CI.
//!
//! Run with: `cargo run --release -p bench --bin kernel_speedup`
//!
//! Environment: `SCALE`, `RECORDS`, `SAMPLES` as usual (see `bench`
//! crate docs); `DATASETS` selects the dataset (default `T-AB`, the
//! Textual family where TF-IDF state dominates); `KERNEL_BENCH_OUT`
//! sets the JSON report path (default `BENCH_kernel.json`).

use std::time::Instant;

use em_datagen::{DatasetId, MagellanBenchmark};
use em_entity::{EntityPair, MatchModel, Schema, SplitConfig};
use em_matchers::{LogisticMatcher, MatcherConfig};
use em_par::ParallelismConfig;
use em_serve::json::Value;
use landmark_core::{DualExplanation, LandmarkConfig, LandmarkExplainer};

/// Forwards only `predict_proba`, hiding the wrapped matcher's
/// `prepare_scorer` override so the default [`em_entity::FallbackScorer`]
/// (reconstruct each pair, extract features from scratch) is used.
struct NaiveOnly<'m, M>(&'m M);

impl<M: MatchModel> MatchModel for NaiveOnly<'_, M> {
    fn predict_proba(&self, schema: &Schema, pair: &EntityPair) -> f64 {
        self.0.predict_proba(schema, pair)
    }
}

fn main() {
    let base = bench::config_from_env();
    let id = match std::env::var("DATASETS") {
        Ok(_) => bench::datasets_from_env()[0],
        Err(_) => DatasetId::TAb,
    };
    println!(
        "# Prepared-kernel vs naive scoring speedup (dataset {}, single thread)",
        id.short_name()
    );
    println!(
        "# scale={}, records/label={}, samples/explanation={}\n",
        base.scale, base.n_records_per_label, base.n_samples
    );

    let benchmark = MagellanBenchmark {
        scale: base.scale,
        ..Default::default()
    };
    let dataset = benchmark.generate(id);
    let (train, _) = dataset.train_test_split(&SplitConfig::default());
    let matcher = LogisticMatcher::train(&train, &MatcherConfig::default());
    let schema = dataset.schema();

    let n_records = base.n_records_per_label.clamp(2, 24);
    let records: Vec<EntityPair> = dataset
        .sample_by_label(true, n_records / 2, 3)
        .into_iter()
        .chain(dataset.sample_by_label(false, n_records / 2, 3))
        .map(|r| r.pair.clone())
        .collect();

    let explainer = LandmarkExplainer::new(LandmarkConfig {
        n_samples: base.n_samples,
        parallelism: ParallelismConfig::serial(),
        ..Default::default()
    });
    let explain_all = |model: &dyn Fn(&EntityPair) -> DualExplanation| {
        let start = Instant::now();
        let duals: Vec<DualExplanation> = records.iter().map(model).collect();
        (start.elapsed().as_secs_f64(), duals)
    };

    let (naive_s, naive) =
        explain_all(&|pair| explainer.explain(&NaiveOnly(&matcher), schema, pair));
    let (kernel_s, kernel) = explain_all(&|pair| explainer.explain(&matcher, schema, pair));

    let identical = naive.iter().zip(&kernel).all(|(a, b)| {
        a.both().iter().zip(b.both().iter()).all(|(x, y)| {
            x.explanation.token_weights == y.explanation.token_weights
                && x.explanation.intercept == y.explanation.intercept
                && x.explanation.model_prediction == y.explanation.model_prediction
        })
    });
    let speedup = naive_s / kernel_s.max(1e-9);

    println!("  naive (fallback): {naive_s:>8.3} s");
    println!("  prepared kernel:  {kernel_s:>8.3} s");
    println!("  speedup:          {speedup:>8.2}x");
    println!(
        "  bit-identical explanations: {}",
        if identical { "yes" } else { "NO" }
    );

    let report = Value::object(vec![
        ("dataset", Value::string(id.short_name())),
        ("records", Value::from(records.len())),
        ("samples", Value::from(base.n_samples)),
        ("naive_s", Value::from(naive_s)),
        ("kernel_s", Value::from(kernel_s)),
        ("speedup", Value::from(speedup)),
        ("bit_identical", Value::from(identical)),
    ]);
    let out = std::env::var("KERNEL_BENCH_OUT").unwrap_or_else(|_| "BENCH_kernel.json".into());
    std::fs::write(&out, report.to_json() + "\n").expect("write kernel bench report");
    println!("\n  report written to {out}");

    if !identical {
        eprintln!("\nERROR: kernel and naive explanations diverged");
        std::process::exit(1);
    }
}
