//! Serial-vs-parallel speedup report for the perturbation-scoring pipeline.
//!
//! Explains the same records twice — once with `ParallelismConfig::serial()`
//! and once with one worker per core — at both parallel levels:
//!
//! 1. **within one explanation**: the record's reconstructed perturbation
//!    pairs fan out across threads inside `par_predict_proba_batch`;
//! 2. **across records**: the eval harness explains records concurrently,
//!    each seeded from the base seed and its record index.
//!
//! Both runs must be bit-identical (the report verifies this); only
//! wall-clock differs. On a single-core host the speedup is ~1.0 by
//! construction.
//!
//! Run with: `cargo run --release -p bench --bin par_speedup`

use std::time::Instant;

use em_datagen::MagellanBenchmark;
use em_entity::{EntityPair, SplitConfig};
use em_eval::technique::explain_record;
use em_eval::Technique;
use em_matchers::{LogisticMatcher, MatcherConfig};
use em_par::{par_map, ParallelismConfig};
use landmark_core::{LandmarkConfig, LandmarkExplainer};

fn main() {
    let base = bench::config_from_env();
    let id = bench::datasets_from_env()[0];
    let threads = std::thread::available_parallelism().map_or(1, usize::from);
    println!(
        "# Parallel perturbation-scoring speedup (dataset {})",
        id.short_name()
    );
    println!("# cores detected: {threads}\n");

    let benchmark = MagellanBenchmark {
        scale: base.scale,
        ..Default::default()
    };
    let dataset = benchmark.generate(id);
    let (train, _) = dataset.train_test_split(&SplitConfig::default());
    let matcher = LogisticMatcher::train(&train, &MatcherConfig::default());
    let schema = dataset.schema();

    // At least one record per label: a 0-record run would only time noise.
    let n_records = base.n_records_per_label.clamp(2, 24);
    let records: Vec<EntityPair> = dataset
        .sample_by_label(true, n_records / 2, 3)
        .into_iter()
        .chain(dataset.sample_by_label(false, n_records / 2, 3))
        .map(|r| r.pair.clone())
        .collect();

    // Level 1: perturbation scoring inside one explanation.
    let explain_all = |parallelism: ParallelismConfig| {
        let explainer = LandmarkExplainer::new(LandmarkConfig {
            n_samples: base.n_samples,
            parallelism,
            ..Default::default()
        });
        let start = Instant::now();
        let duals: Vec<_> = records
            .iter()
            .map(|pair| explainer.explain(&matcher, schema, pair))
            .collect();
        (start.elapsed(), duals)
    };
    let (t_serial, serial) = explain_all(ParallelismConfig::serial());
    let (t_parallel, parallel) = explain_all(ParallelismConfig::with_threads(threads));
    let identical = serial.iter().zip(&parallel).all(|(a, b)| {
        a.both().iter().zip(b.both().iter()).all(|(x, y)| {
            x.explanation.token_weights == y.explanation.token_weights
                && x.explanation.intercept == y.explanation.intercept
        })
    });
    println!(
        "## within-explanation scoring ({} records, {} samples)",
        records.len(),
        base.n_samples
    );
    report(t_serial.as_secs_f64(), t_parallel.as_secs_f64(), identical);

    // Level 2: per-record explanation fan-out (the eval harness loop).
    let run_level2 = |parallelism: ParallelismConfig| {
        let start = Instant::now();
        let views = par_map(&parallelism, &records, |i, pair| {
            let record_seed = base.seed.wrapping_add(i as u64).wrapping_mul(0x9E37_79B9);
            explain_record(
                Technique::LandmarkDouble,
                &matcher,
                schema,
                pair,
                base.n_samples,
                record_seed,
            )
        });
        (start.elapsed(), views)
    };
    let (t2_serial, v_serial) = run_level2(ParallelismConfig::serial());
    let (t2_parallel, v_parallel) = run_level2(ParallelismConfig::with_threads(threads));
    let identical2 = v_serial.iter().zip(&v_parallel).all(|(a, b)| {
        a.iter()
            .zip(b)
            .all(|(x, y)| x.removable == y.removable && x.base_prediction == y.base_prediction)
    });
    println!("\n## across-record explanation ({} records)", records.len());
    report(
        t2_serial.as_secs_f64(),
        t2_parallel.as_secs_f64(),
        identical2,
    );

    if !(identical && identical2) {
        eprintln!("\nERROR: serial and parallel runs diverged");
        std::process::exit(1);
    }
}

fn report(serial_s: f64, parallel_s: f64, identical: bool) {
    println!("  serial:   {serial_s:>8.3} s");
    println!("  parallel: {parallel_s:>8.3} s");
    println!("  speedup:  {:>8.2}x", serial_s / parallel_s.max(1e-9));
    println!(
        "  bit-identical results: {}",
        if identical { "yes" } else { "NO" }
    );
}
