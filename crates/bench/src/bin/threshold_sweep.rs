//! The paper's Section 4.2.1 / 4.3 threshold note: with the decision
//! threshold moved from 0.5 to 0.4, Landmark Explanation's token-based
//! accuracy and interest improve relative to LIME.
//!
//! Sweeps the threshold over {0.3, 0.4, 0.5, 0.6} on a subset of datasets
//! and prints accuracy / interest per technique.
//!
//! Run with: `cargo run --release -p bench --bin threshold_sweep`

use em_eval::{EvalConfig, Evaluator};

fn main() {
    let base = bench::config_from_env();
    let datasets = bench::datasets_from_env();
    bench::print_banner("Threshold sweep (Sections 4.2.1, 4.3)", &base, &datasets);

    for threshold in [0.3, 0.4, 0.5, 0.6] {
        println!("== threshold {threshold} ==");
        let evaluator = Evaluator::new(EvalConfig { threshold, ..base });
        for &id in &datasets {
            let r = evaluator.evaluate_dataset(id);
            print!("{:<7}", r.dataset);
            for lr in [&r.matching, &r.non_matching] {
                let tag = if lr.label { "M" } else { "N" };
                for t in &lr.techniques {
                    print!(
                        "  {tag}/{}: acc={:.2} int={:.2}",
                        t.technique.label().chars().next().unwrap_or('?'),
                        t.token.accuracy,
                        t.interest
                    );
                }
            }
            println!();
        }
        println!();
    }
}
