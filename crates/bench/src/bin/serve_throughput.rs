//! Throughput report for the `em-serve` explanation API.
//!
//! Spawns the server in-process on an ephemeral loopback port, trains a
//! matcher, and drives it over real TCP in two phases:
//!
//! * **cold** — every request uses a fresh seed, so each one computes a
//!   full explanation (cache misses);
//! * **cached** — the same requests repeated, answered from the
//!   explanation cache (and verified byte-identical to the cold bodies).
//!
//! Emits a JSON report with requests/second and p50/p99 latency per phase.
//! Reads the shared `SCALE`/`SAMPLES`/`DATASETS` variables plus `REQUESTS`
//! (requests per phase, default 20).
//!
//! Run with: `cargo run --release -p bench --bin serve_throughput`

use std::time::Instant;

use em_datagen::MagellanBenchmark;
use em_entity::{EntityPair, Schema};
use em_matchers::{LogisticMatcher, MatcherConfig};
use em_par::ParallelismConfig;
use em_serve::client;
use em_serve::json::Value;
use em_serve::{ExplainOptions, Server, ServerConfig};

fn explain_body(schema: &Schema, pair: &EntityPair, n_samples: usize, seed: u64) -> String {
    let entity = |e: &em_entity::Entity| {
        Value::Object(
            (0..schema.len())
                .map(|i| (schema.name(i).to_string(), Value::string(e.value(i))))
                .collect(),
        )
    };
    Value::object(vec![
        (
            "pair",
            Value::object(vec![
                ("left", entity(&pair.left)),
                ("right", entity(&pair.right)),
            ]),
        ),
        ("explainer", Value::string("landmark")),
        (
            "config",
            Value::object(vec![
                ("n_samples", n_samples.into()),
                ("seed", Value::Number(seed as f64)),
            ]),
        ),
    ])
    .to_json()
}

/// Runs one phase; returns (per-request latencies in µs, response bodies).
fn drive(
    addr: std::net::SocketAddr,
    bodies: &[String],
    expect_cache: &str,
) -> (Vec<u64>, Vec<String>) {
    let mut latencies = Vec::with_capacity(bodies.len());
    let mut responses = Vec::with_capacity(bodies.len());
    for body in bodies {
        let start = Instant::now();
        let resp = client::request(addr, "POST", "/explain", body).expect("request failed");
        latencies.push(u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX));
        assert_eq!(resp.status, 200, "{}", resp.body);
        assert_eq!(resp.header("x-cache"), Some(expect_cache));
        responses.push(resp.body);
    }
    (latencies, responses)
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn phase_report(name: &str, latencies: &mut [u64]) -> Value {
    latencies.sort_unstable();
    let total_us: u64 = latencies.iter().sum();
    let rps = latencies.len() as f64 / (total_us as f64 / 1e6);
    Value::object(vec![
        ("phase", Value::string(name)),
        ("requests", latencies.len().into()),
        ("requests_per_sec", rps.into()),
        ("p50_us", Value::Number(percentile(latencies, 0.5) as f64)),
        ("p99_us", Value::Number(percentile(latencies, 0.99) as f64)),
    ])
}

fn main() {
    let base = bench::config_from_env();
    let id = bench::datasets_from_env()[0];
    let n_requests: usize = std::env::var("REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20);

    let dataset = MagellanBenchmark {
        scale: base.scale,
        ..Default::default()
    }
    .generate(id);
    let schema = dataset.schema().clone();
    let matcher = LogisticMatcher::train(&dataset, &MatcherConfig::default());

    // One body per distinct seed: distinct cache keys, so the first pass is
    // all misses and the second all hits.
    let records = dataset.records();
    let bodies: Vec<String> = (0..n_requests)
        .map(|i| {
            let pair = &records[i % records.len()].pair;
            explain_body(&schema, pair, base.n_samples, base.seed + i as u64)
        })
        .collect();

    let server = Server::bind(
        "127.0.0.1:0",
        schema,
        Box::new(matcher),
        ServerConfig {
            parallelism: ParallelismConfig::auto(),
            // One shard: exact LRU, so capacity = n_requests guarantees the
            // second pass is all hits regardless of key-hash imbalance.
            cache_capacity: n_requests.max(1),
            cache_shards: 1,
            defaults: ExplainOptions {
                n_samples: base.n_samples,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .expect("bind ephemeral port");
    let handle = server.spawn();
    let addr = handle.addr();

    let (mut cold, cold_bodies) = drive(addr, &bodies, "miss");
    let (mut cached, cached_bodies) = drive(addr, &bodies, "hit");
    let identical = cold_bodies == cached_bodies;

    let metrics = client::request(addr, "GET", "/metrics", "").expect("metrics");
    client::request(addr, "POST", "/shutdown", "").expect("shutdown");
    handle.join();

    let report = Value::object(vec![
        ("dataset", Value::string(id.short_name())),
        ("n_samples", base.n_samples.into()),
        ("identical_bodies", identical.into()),
        (
            "phases",
            Value::Array(vec![
                phase_report("cold", &mut cold),
                phase_report("cached", &mut cached),
            ]),
        ),
    ]);
    println!("{}", report.to_json());
    assert!(
        identical,
        "cached bodies must be byte-identical to cold ones"
    );
    assert!(metrics.body.contains("em_serve_cache_hits_total"));
}
