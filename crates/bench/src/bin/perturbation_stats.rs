//! Empirical verification of the paper's Section 1 motivation.
//!
//! For each dataset, measures the perturbation *neighborhood* each
//! technique generates around non-matching records:
//!
//! * the fraction of neighborhood samples the model classifies as match
//!   (LIME's neighborhoods should be match-starved; double-entity
//!   injection should fix this);
//! * the fraction of LIME samples containing a *null perturbation* (the
//!   same token text removed from both entities).
//!
//! Run with: `cargo run --release -p bench --bin perturbation_stats`

use em_datagen::MagellanBenchmark;
use em_entity::{EntityPair, SplitConfig};
use em_eval::{neighborhood_stats, Technique};
use em_matchers::{LogisticMatcher, MatcherConfig};

fn main() {
    let config = bench::config_from_env();
    let datasets = bench::datasets_from_env();
    bench::print_banner(
        "Perturbation-neighborhood statistics (Section 1)",
        &config,
        &datasets,
    );

    println!(
        "{:<8} {:>14} {:>14} {:>14} {:>14} {:>12}",
        "Dataset", "LIME match%", "Single match%", "Double match%", "Copy match%", "LIME null%"
    );
    let benchmark = MagellanBenchmark {
        scale: config.scale,
        ..Default::default()
    };
    for id in datasets {
        let dataset = benchmark.generate(id);
        let (train, _) = dataset.train_test_split(&SplitConfig::default());
        let matcher = LogisticMatcher::train(&train, &MatcherConfig::default());
        let records: Vec<&EntityPair> = dataset
            .sample_by_label(false, config.n_records_per_label.min(20), 5)
            .into_iter()
            .map(|r| &r.pair)
            .collect();
        let mut sums = [0.0f64; 4];
        let mut null_sum = 0.0;
        for (i, pair) in records.iter().enumerate() {
            for (k, technique) in Technique::all().into_iter().enumerate() {
                let order = [
                    Technique::Lime,
                    Technique::LandmarkSingle,
                    Technique::LandmarkDouble,
                    Technique::MojitoCopy,
                ];
                let _ = technique;
                let s = neighborhood_stats(
                    &matcher,
                    dataset.schema(),
                    pair,
                    order[k],
                    config.n_samples,
                    i as u64,
                );
                sums[k] += s.match_fraction;
                if order[k] == Technique::Lime {
                    null_sum += s.null_perturbation_fraction;
                }
            }
        }
        let n = records.len().max(1) as f64;
        println!(
            "{:<8} {:>13.1}% {:>13.1}% {:>13.1}% {:>13.1}% {:>11.1}%",
            id.short_name(),
            100.0 * sums[0] / n,
            100.0 * sums[1] / n,
            100.0 * sums[2] / n,
            100.0 * sums[3] / n,
            100.0 * null_sum / n,
        );
    }
    println!("\nExpected: LIME/Single neighborhoods of non-matching records contain almost");
    println!("no match-class samples; Double injects landmark tokens and restores balance.");
}
