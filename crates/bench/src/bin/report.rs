//! One-pass reproduction report: evaluates every dataset once and prints
//! Tables 1-4 together (three times cheaper than running the table2/3/4
//! binaries separately, since explanations are shared across the three
//! evaluations).
//!
//! Run with: `SCALE=1.0 RECORDS=100 SAMPLES=500 cargo run --release -p bench --bin report`

use em_datagen::MagellanBenchmark;
use em_eval::tables::{format_table1, format_table2, format_table3, format_table4};
use em_eval::Evaluator;

fn main() {
    let config = bench::config_from_env();
    let datasets = bench::datasets_from_env();
    bench::print_banner("Full reproduction report (Tables 1-4)", &config, &datasets);

    let benchmark = MagellanBenchmark {
        scale: config.scale,
        ..Default::default()
    };
    let rows: Vec<_> = datasets
        .iter()
        .map(|&id| {
            let d = benchmark.generate(id);
            (id, d.len(), d.match_percentage())
        })
        .collect();
    println!("{}", format_table1(&rows));

    let evaluator = Evaluator::new(config);
    let mut results = Vec::new();
    for id in &datasets {
        eprintln!("evaluating {} ...", id.short_name());
        let r = evaluator.evaluate_dataset(*id);
        eprintln!(
            "  matcher F1 = {:.3} ({} match / {} non-match records explained)",
            r.matcher_f1, r.matching.n_records, r.non_matching.n_records
        );
        results.push(r);
    }

    println!("{}", format_table2(&results, true));
    println!("{}", format_table2(&results, false));
    println!("{}", format_table3(&results, true));
    println!("{}", format_table3(&results, false));
    println!("{}", format_table4(&results, true));
    println!("{}", format_table4(&results, false));

    println!("Matcher F1 per dataset (diagnostic, not a paper table):");
    for r in &results {
        println!("  {:<7} F1 = {:.3}", r.dataset, r.matcher_f1);
    }
}
