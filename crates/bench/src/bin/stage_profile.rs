//! Per-stage latency profile of the explanation pipeline.
//!
//! Trains a matcher on one benchmark dataset, then runs each explainer
//! (landmark, lime, mojito-copy) at each requested thread count with an
//! [`em_obs::Collector`] attached, and emits a JSON report: end-to-end
//! wall-clock, per-stage time and entry counts, throughput counters, and
//! the *coverage* — the fraction of end-to-end time the stage spans
//! account for. Coverage below 0.9 fails the run: it would mean a
//! meaningful chunk of explanation latency is invisible to tracing.
//!
//! Reads the shared `SCALE`/`RECORDS`/`SAMPLES`/`DATASETS` variables plus
//! `THREAD_COUNTS` (comma-separated scoring thread counts, `0` = auto;
//! default `1,0`).
//!
//! Run with: `cargo run --release -p bench --bin stage_profile`

use std::time::Instant;

use em_datagen::MagellanBenchmark;
use em_entity::{EntityPair, Schema};
use em_lime::{LimeConfig, LimeExplainer, MojitoCopyConfig, MojitoCopyExplainer};
use em_matchers::{LogisticMatcher, MatcherConfig};
use em_obs::{Collector, Counter, Stage};
use em_par::ParallelismConfig;
use em_serve::json::Value;
use landmark_core::{LandmarkConfig, LandmarkExplainer};

/// The coverage floor: stage spans must explain at least this fraction of
/// end-to-end explanation wall-clock.
const MIN_COVERAGE: f64 = 0.9;

/// Explains every pair once with the selected explainer, filling `trace`.
fn run_cell(
    explainer: &str,
    model: &LogisticMatcher,
    schema: &Schema,
    pairs: &[&EntityPair],
    n_samples: usize,
    threads: usize,
    trace: &Collector,
) {
    let parallelism = ParallelismConfig::with_threads(threads);
    match explainer {
        "landmark" => {
            let e = LandmarkExplainer::new(LandmarkConfig {
                n_samples,
                parallelism,
                ..Default::default()
            });
            for pair in pairs {
                e.explain_traced(model, schema, pair, trace);
            }
        }
        "lime" => {
            let e = LimeExplainer::new(LimeConfig {
                n_samples,
                parallelism,
                ..Default::default()
            });
            for pair in pairs {
                e.explain_traced(model, schema, pair, trace);
            }
        }
        "mojito-copy" => {
            let e = MojitoCopyExplainer::new(MojitoCopyConfig {
                n_samples,
                parallelism,
                ..Default::default()
            });
            for pair in pairs {
                e.explain_traced(model, schema, pair, trace);
            }
        }
        other => unreachable!("unknown explainer {other}"),
    }
}

fn main() {
    let base = bench::config_from_env();
    let id = bench::datasets_from_env()[0];
    let thread_counts: Vec<usize> = std::env::var("THREAD_COUNTS")
        .ok()
        .map(|v| v.split(',').filter_map(|t| t.trim().parse().ok()).collect())
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![1, 0]);

    let dataset = MagellanBenchmark {
        scale: base.scale,
        ..Default::default()
    }
    .generate(id);
    let schema = dataset.schema().clone();
    let matcher = LogisticMatcher::train(&dataset, &MatcherConfig::default());
    let records = dataset.records();
    let pairs: Vec<&EntityPair> = records
        .iter()
        .take(base.n_records_per_label.max(1))
        .map(|r| &r.pair)
        .collect();

    eprintln!(
        "# stage_profile — dataset={}, records={}, samples={}, threads={:?}",
        id.short_name(),
        pairs.len(),
        base.n_samples,
        thread_counts
    );

    let mut cells = Vec::new();
    let mut min_coverage = f64::INFINITY;
    for explainer in ["landmark", "lime", "mojito-copy"] {
        for &threads in &thread_counts {
            let trace = Collector::new();
            let start = Instant::now();
            run_cell(
                explainer,
                &matcher,
                &schema,
                &pairs,
                base.n_samples,
                threads,
                &trace,
            );
            let wall_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let coverage = trace.total_stage_nanos() as f64 / wall_ns as f64;
            min_coverage = min_coverage.min(coverage);

            let stages: Vec<(String, Value)> = Stage::all()
                .iter()
                .filter(|s| trace.stage_entries(**s) > 0)
                .map(|s| {
                    (
                        s.label().to_string(),
                        Value::object(vec![
                            ("us", Value::Number((trace.stage_nanos(*s) / 1_000) as f64)),
                            ("entries", Value::Number(trace.stage_entries(*s) as f64)),
                        ]),
                    )
                })
                .collect();
            cells.push(Value::object(vec![
                ("explainer", Value::string(explainer)),
                ("threads", threads.into()),
                ("records", pairs.len().into()),
                ("end_to_end_us", Value::Number((wall_ns / 1_000) as f64)),
                ("stage_coverage", coverage.into()),
                ("stages", Value::Object(stages)),
                (
                    "samples_scored",
                    Value::Number(trace.counter(Counter::SamplesScored) as f64),
                ),
                (
                    "features",
                    Value::Number(trace.counter(Counter::Features) as f64),
                ),
            ]));
        }
    }

    let report = Value::object(vec![
        ("dataset", Value::string(id.short_name())),
        ("n_samples", base.n_samples.into()),
        ("min_stage_coverage", min_coverage.into()),
        ("cells", Value::Array(cells)),
    ]);
    println!("{}", report.to_json());
    assert!(
        min_coverage >= MIN_COVERAGE,
        "stage spans cover only {min_coverage:.3} of end-to-end latency (floor {MIN_COVERAGE})"
    );
}
