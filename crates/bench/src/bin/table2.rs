//! Regenerates Table 2: the token-based reliability evaluation.
//!
//! For every dataset and label, removes 25% of explained tokens and
//! compares the black-box probability shift with the surrogate's
//! coefficient sum (accuracy on the predicted class + MAE), for Single /
//! Double / LIME (and Mojito Copy on the non-matching label).
//!
//! Run with: `cargo run --release -p bench --bin table2`
//! Paper-scale: `SCALE=1.0 RECORDS=100 SAMPLES=500 cargo run --release -p bench --bin table2`

use em_eval::tables::format_table2;
use em_eval::Evaluator;

fn main() {
    let config = bench::config_from_env();
    let datasets = bench::datasets_from_env();
    bench::print_banner("Table 2 (token-based evaluation)", &config, &datasets);

    let evaluator = Evaluator::new(config);
    let mut results = Vec::new();
    for id in datasets {
        eprintln!("evaluating {} ...", id.short_name());
        results.push(evaluator.evaluate_dataset(id));
    }
    println!("{}", format_table2(&results, true));
    println!("{}", format_table2(&results, false));

    println!("Expected shape (paper): on matching records Single beats LIME on accuracy");
    println!("everywhere and on MAE in 11/12 datasets; on non-matching records Double has");
    println!("the lowest MAE in most datasets and Mojito Copy collapses (accuracy ~0).");
}
