//! Stability of explanations across RNG seeds (not in the paper; a
//! robustness check DESIGN.md calls for).
//!
//! For one dataset, measures how reproducible each technique's top-5
//! token ranking and coefficients are across 4 seeds, at the default
//! perturbation budget.
//!
//! Run with: `cargo run --release -p bench --bin stability`

use em_datagen::MagellanBenchmark;
use em_entity::SplitConfig;
use em_eval::{explanation_stability, Technique};
use em_matchers::{LogisticMatcher, MatcherConfig};

fn main() {
    let config = bench::config_from_env();
    let id = bench::datasets_from_env()[0];
    println!(
        "# Explanation stability across seeds (dataset {})\n",
        id.short_name()
    );

    let benchmark = MagellanBenchmark {
        scale: config.scale,
        ..Default::default()
    };
    let dataset = benchmark.generate(id);
    let (train, _) = dataset.train_test_split(&SplitConfig::default());
    let matcher = LogisticMatcher::train(&train, &MatcherConfig::default());
    let seeds = [11, 22, 33, 44];

    println!(
        "{:<14} {:>8} {:>14} {:>12}",
        "technique", "samples", "top5 jaccard", "weight cv"
    );
    for n_samples in [100usize, config.n_samples] {
        for technique in Technique::all() {
            let mut jac = 0.0;
            let mut cv = 0.0;
            let records = dataset.sample_by_label(false, 5, 3);
            for r in &records {
                let rep = explanation_stability(
                    &matcher,
                    dataset.schema(),
                    &r.pair,
                    technique,
                    n_samples,
                    5,
                    &seeds,
                );
                jac += rep.top_k_jaccard;
                cv += rep.weight_cv;
            }
            let n = records.len() as f64;
            println!(
                "{:<14} {:>8} {:>14.3} {:>12.3}",
                technique.label(),
                n_samples,
                jac / n,
                cv / n
            );
        }
        println!();
    }
    println!("Expected: stability improves with the perturbation budget; the landmark");
    println!("techniques are at least as stable as LIME at equal budget (fewer features");
    println!("per surrogate: only the varying entity's tokens).");
}
