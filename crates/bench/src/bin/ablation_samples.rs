//! Ablation: surrogate fidelity vs. perturbation budget.
//!
//! DESIGN.md §5(2): how many perturbation samples does the surrogate need
//! before the token-based MAE stops improving? Sweeps the budget and
//! reports accuracy / MAE per technique on one dataset.
//!
//! Run with: `cargo run --release -p bench --bin ablation_samples`

use em_datagen::DatasetId;
use em_eval::{EvalConfig, Evaluator, Technique};

fn main() {
    let base = bench::config_from_env();
    let id = bench::datasets_from_env()[0];
    println!(
        "# Ablation: perturbation budget (dataset {})\n",
        id.short_name()
    );
    println!(
        "{:<8} {:<12} {:>12} {:>8} {:>8} {:>8}",
        "samples", "technique", "label", "acc", "mae", "interest"
    );

    for n_samples in [50usize, 100, 250, 500, 1000] {
        let evaluator = Evaluator::new(EvalConfig { n_samples, ..base });
        let r = evaluator.evaluate_dataset(id);
        for lr in [&r.matching, &r.non_matching] {
            for t in &lr.techniques {
                if t.technique == Technique::MojitoCopy && lr.label {
                    continue; // the paper reports Copy on non-matching only
                }
                println!(
                    "{:<8} {:<12} {:>12} {:>8.3} {:>8.3} {:>8.3}",
                    n_samples,
                    t.technique.label(),
                    if lr.label { "match" } else { "non-match" },
                    t.token.accuracy,
                    t.token.mae,
                    t.interest
                );
            }
        }
        println!();
    }
    println!("Expected: MAE decreases and stabilizes with budget; beyond ~500 samples");
    println!("(the paper's LIME default) additional perturbations buy little fidelity.");
}

// Default dataset when DATASETS is unset: the first of DatasetId::all(),
// i.e. S-BR — the smallest dataset, keeping the sweep fast.
#[allow(dead_code)]
fn _doc(_: DatasetId) {}
