//! Regenerates Table 3: the attribute-based evaluation.
//!
//! Weighted Kendall tau between the attribute ranking of the
//! logistic-regression EM model (|coefficient| per attribute) and the
//! surrogate's ranking (sum of |token weights| per attribute).
//!
//! Run with: `cargo run --release -p bench --bin table3`

use em_eval::tables::format_table3;
use em_eval::Evaluator;

fn main() {
    let config = bench::config_from_env();
    let datasets = bench::datasets_from_env();
    bench::print_banner("Table 3 (attribute-based evaluation)", &config, &datasets);

    let evaluator = Evaluator::new(config);
    let mut results = Vec::new();
    for id in datasets {
        eprintln!("evaluating {} ...", id.short_name());
        results.push(evaluator.evaluate_dataset(id));
    }
    println!("{}", format_table3(&results, true));
    println!("{}", format_table3(&results, false));

    println!("Expected shape (paper): Landmark (especially Double on matching records)");
    println!("correlates with the EM model's attribute ranking at least as well as LIME;");
    println!("Mojito Copy is not consistently better despite being designed for non-matches.");
}
