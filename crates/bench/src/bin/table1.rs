//! Regenerates Table 1: the benchmark inventory (size, % match).
//!
//! Run with: `SCALE=1.0 cargo run --release -p bench --bin table1`

use em_datagen::MagellanBenchmark;
use em_eval::tables::format_table1;

fn main() {
    let config = bench::config_from_env();
    let datasets = bench::datasets_from_env();
    bench::print_banner("Table 1", &config, &datasets);

    let benchmark = MagellanBenchmark {
        scale: config.scale,
        ..Default::default()
    };
    let rows: Vec<_> = datasets
        .iter()
        .map(|&id| {
            let d = benchmark.generate(id);
            (id, d.len(), d.match_percentage())
        })
        .collect();
    println!("{}", format_table1(&rows));
    println!("Paper reference (full scale): S-BR 450/15.11, S-IA 539/24.49, S-FZ 946/11.63,");
    println!("S-DA 12363/17.96, S-DG 28707/18.63, S-AG 11460/10.18, S-WA 10242/9.39,");
    println!(
        "T-AB 9575/10.74, D-IA 539/24.49, D-DA 12363/17.96, D-DG 28707/18.63, D-WA 10242/9.39"
    );
}
