//! Batch-pipeline throughput: records/second of `em-batch` end-to-end
//! (plan once, run at several worker-thread counts), with a byte-identity
//! cross-check that every thread count produced the same output.
//!
//! Run with: `cargo run --release -p bench --bin batch_pipeline`

use std::path::{Path, PathBuf};
use std::time::Instant;

use em_batch::{execute, plan, NoFailpoints, PlanConfig, RunMode};
use em_codec::explain::ExplainerKind;
use em_datagen::MagellanBenchmark;
use em_entity::{dataset_to_csv, EmDataset};

fn scratch() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bench-batch-pipeline-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn concatenated(run_dir: &Path, shards: usize) -> Vec<u8> {
    let plan = plan::RunPlan::load(run_dir).expect("load plan");
    let mut bytes = Vec::new();
    for shard in 0..shards {
        bytes.extend(std::fs::read(plan.shard_path(run_dir, shard)).expect("read shard"));
    }
    bytes
}

fn main() {
    let base = bench::config_from_env();
    let id = bench::datasets_from_env()[0];
    println!(
        "# Batch pipeline throughput (dataset {}, n_samples {})\n",
        id.short_name(),
        base.n_samples
    );

    let dir = scratch();
    let full = MagellanBenchmark {
        scale: base.scale,
        ..Default::default()
    }
    .generate(id);
    let n_records = full.len().min(4 * base.n_records_per_label);
    let small = EmDataset::new(
        full.name(),
        full.schema().clone(),
        full.records()[..n_records].to_vec(),
    );
    let input = dir.join("input.csv");
    std::fs::write(&input, dataset_to_csv(&small)).expect("write input");

    let shards = 4.min(n_records);
    println!("{:>8} {:>10} {:>12}", "threads", "seconds", "records/s");
    let mut outputs: Vec<Vec<u8>> = Vec::new();
    for threads in [1usize, 2, 4] {
        let run_dir = dir.join(format!("run-t{threads}"));
        plan::create_plan(
            &input,
            &run_dir,
            &PlanConfig {
                shards,
                seed: 42,
                explainer: ExplainerKind::Landmark,
                n_samples: base.n_samples,
                threads,
            },
        )
        .expect("plan");
        let start = Instant::now();
        execute(
            &run_dir,
            RunMode::Fresh,
            None,
            &NoFailpoints,
            em_obs::noop(),
        )
        .expect("run");
        let secs = start.elapsed().as_secs_f64();
        println!(
            "{threads:>8} {secs:>10.3} {:>12.1}",
            n_records as f64 / secs
        );
        outputs.push(concatenated(&run_dir, shards));
    }

    let identical = outputs.windows(2).all(|w| w[0] == w[1]);
    println!(
        "\nbyte-identity across thread counts: {}",
        if identical { "ok" } else { "VIOLATED" }
    );
    let _ = std::fs::remove_dir_all(&dir);
    assert!(identical, "outputs differ across thread counts");
}
