//! Regenerates Table 4: the interest evaluation.
//!
//! Removes all positive tokens (matching label) or all negative tokens
//! (non-matching label) and measures the fraction of records whose
//! predicted class flips.
//!
//! Run with: `cargo run --release -p bench --bin table4`

use em_eval::tables::format_table4;
use em_eval::Evaluator;

fn main() {
    let config = bench::config_from_env();
    let datasets = bench::datasets_from_env();
    bench::print_banner("Table 4 (interest of the explanations)", &config, &datasets);

    let evaluator = Evaluator::new(config);
    let mut results = Vec::new();
    for id in datasets {
        eprintln!("evaluating {} ...", id.short_name());
        results.push(evaluator.evaluate_dataset(id));
    }
    println!("{}", format_table4(&results, true));
    println!("{}", format_table4(&results, false));

    println!("Expected shape (paper): on non-matching records Double far exceeds");
    println!("LIME/Mojito Drop and Mojito Copy; on matching records LIME is slightly ahead.");
}
