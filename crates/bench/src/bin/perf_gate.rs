//! CI perf-regression gate for the prepared scoring kernel.
//!
//! Compares a fresh `kernel_speedup` JSON report against the committed
//! baseline (`results/BENCH_kernel.json`) and fails if:
//!
//! * the fresh run was not bit-identical between kernel and naive paths
//!   (a correctness failure, never tolerated), or
//! * the fresh speedup fell more than 25% below the baseline speedup
//!   (a perf regression beyond shared-runner noise).
//!
//! A fresh speedup *above* baseline passes silently — ratcheting the
//! committed baseline upward is a human decision, not a CI one.
//!
//! Usage: `perf_gate <baseline.json> <current.json>`

use em_serve::json::Value;

/// Fraction of the baseline speedup the fresh run may lose before the
/// gate fails (shared CI runners are noisy; the kernel's margin is not).
const TOLERANCE: f64 = 0.25;

struct Report {
    speedup: f64,
    bit_identical: bool,
}

fn load(path: &str) -> Report {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    let value = Value::parse(&text).unwrap_or_else(|e| die(&format!("cannot parse {path}: {e}")));
    let field = |key: &str| -> &Value {
        value
            .get(key)
            .unwrap_or_else(|| die(&format!("{path}: missing field {key:?}")))
    };
    Report {
        speedup: field("speedup")
            .as_f64()
            .unwrap_or_else(|| die(&format!("{path}: speedup is not a number"))),
        bit_identical: field("bit_identical")
            .as_bool()
            .unwrap_or_else(|| die(&format!("{path}: bit_identical is not a bool"))),
    }
}

fn die(msg: &str) -> ! {
    eprintln!("perf_gate: {msg}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() != 3 {
        die("usage: perf_gate <baseline.json> <current.json>");
    }
    let baseline = load(&args[1]);
    let current = load(&args[2]);
    let floor = baseline.speedup * (1.0 - TOLERANCE);

    println!("# Kernel perf gate");
    println!(
        "  baseline speedup: {:>7.2}x  ({})",
        baseline.speedup, args[1]
    );
    println!(
        "  current speedup:  {:>7.2}x  ({})",
        current.speedup, args[2]
    );
    println!(
        "  allowed floor:    {floor:>7.2}x  (baseline - {:.0}%)",
        TOLERANCE * 100.0
    );
    println!(
        "  current bit-identical: {}",
        if current.bit_identical { "yes" } else { "NO" }
    );

    if !current.bit_identical {
        eprintln!("\nFAIL: current run was not bit-identical between kernel and naive paths");
        std::process::exit(1);
    }
    if current.speedup < floor {
        eprintln!(
            "\nFAIL: kernel speedup regressed: {:.2}x < floor {:.2}x",
            current.speedup, floor
        );
        std::process::exit(1);
    }
    println!("\nPASS");
}
