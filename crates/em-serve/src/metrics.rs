//! Lock-free request counters and latency histograms for `/metrics`.
//!
//! Rendered in the Prometheus text exposition format (counters and
//! cumulative `_bucket{le=...}` histogram series) so any standard scraper
//! can consume it, while staying dependency-free: every cell is an
//! `AtomicU64` bumped on the request path.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::cache::CacheStats;

/// Histogram bucket upper bounds, in microseconds.
pub const LATENCY_BUCKETS_US: [u64; 10] = [
    100, 500, 1_000, 5_000, 10_000, 50_000, 100_000, 500_000, 1_000_000, 5_000_000,
];

/// The endpoints tracked individually. `Other` covers 404/405/parse
/// failures so every handled connection is counted somewhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `POST /explain`.
    Explain,
    /// `POST /predict`.
    Predict,
    /// `GET /healthz`.
    Healthz,
    /// `GET /readyz`.
    Readyz,
    /// `GET /metrics`.
    Metrics,
    /// `POST /drain`.
    Drain,
    /// `POST /shutdown`.
    Shutdown,
    /// Anything else.
    Other,
}

impl Endpoint {
    /// All endpoints, in render order.
    pub fn all() -> [Endpoint; 8] {
        [
            Endpoint::Explain,
            Endpoint::Predict,
            Endpoint::Healthz,
            Endpoint::Readyz,
            Endpoint::Metrics,
            Endpoint::Drain,
            Endpoint::Shutdown,
            Endpoint::Other,
        ]
    }

    /// The metrics label.
    pub fn label(self) -> &'static str {
        match self {
            Endpoint::Explain => "explain",
            Endpoint::Predict => "predict",
            Endpoint::Healthz => "healthz",
            Endpoint::Readyz => "readyz",
            Endpoint::Metrics => "metrics",
            Endpoint::Drain => "drain",
            Endpoint::Shutdown => "shutdown",
            Endpoint::Other => "other",
        }
    }

    fn index(self) -> usize {
        match self {
            Endpoint::Explain => 0,
            Endpoint::Predict => 1,
            Endpoint::Healthz => 2,
            Endpoint::Readyz => 3,
            Endpoint::Metrics => 4,
            Endpoint::Drain => 5,
            Endpoint::Shutdown => 6,
            Endpoint::Other => 7,
        }
    }
}

/// Why a connection was rejected or abandoned instead of being served
/// normally. Each cause is one `em_serve_rejects_total{cause=...}`
/// counter, so an operator (or the chaos suite) can attribute every
/// misbehaving-client pattern to its specific defence (DESIGN.md §14).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectCause {
    /// Queue full: 503 + `Retry-After` written from the accept thread.
    Shed,
    /// Queue full and the non-blocking 503 write did not complete; the
    /// connection was dropped rather than blocking the accept loop.
    ShedDrop,
    /// Queued longer than the admission bound; discarded unanswered
    /// because the client has almost certainly timed out.
    StaleQueue,
    /// Deadline expired before the client sent a single byte
    /// (connect-and-hold).
    Idle,
    /// Deadline expired while reading the request line or headers
    /// (slowloris header drip).
    HeaderDeadline,
    /// Deadline expired while reading the declared body (body drip).
    BodyDeadline,
    /// Deadline expired while writing the response (never-reading peer).
    WriteDeadline,
    /// The peer closed or reset the connection mid-request.
    PeerAbort,
}

impl RejectCause {
    /// All causes, in render order.
    pub fn all() -> [RejectCause; 8] {
        [
            RejectCause::Shed,
            RejectCause::ShedDrop,
            RejectCause::StaleQueue,
            RejectCause::Idle,
            RejectCause::HeaderDeadline,
            RejectCause::BodyDeadline,
            RejectCause::WriteDeadline,
            RejectCause::PeerAbort,
        ]
    }

    /// The `cause` label value.
    pub fn label(self) -> &'static str {
        match self {
            RejectCause::Shed => "shed",
            RejectCause::ShedDrop => "shed_drop",
            RejectCause::StaleQueue => "stale_queue",
            RejectCause::Idle => "idle",
            RejectCause::HeaderDeadline => "header_deadline",
            RejectCause::BodyDeadline => "body_deadline",
            RejectCause::WriteDeadline => "write_deadline",
            RejectCause::PeerAbort => "peer_abort",
        }
    }

    fn index(self) -> usize {
        match self {
            RejectCause::Shed => 0,
            RejectCause::ShedDrop => 1,
            RejectCause::StaleQueue => 2,
            RejectCause::Idle => 3,
            RejectCause::HeaderDeadline => 4,
            RejectCause::BodyDeadline => 5,
            RejectCause::WriteDeadline => 6,
            RejectCause::PeerAbort => 7,
        }
    }
}

#[derive(Debug, Default)]
struct EndpointSeries {
    requests: AtomicU64,
    errors: AtomicU64,
    bucket_counts: [AtomicU64; LATENCY_BUCKETS_US.len() + 1],
    latency_sum_us: AtomicU64,
}

/// One histogram per pipeline stage ([`em_obs::Stage`]): each `/explain`
/// request contributes one observation per stage it entered — the total
/// time that request spent in the stage.
#[derive(Debug, Default)]
struct StageSeries {
    count: AtomicU64,
    bucket_counts: [AtomicU64; LATENCY_BUCKETS_US.len() + 1],
    sum_us: AtomicU64,
}

/// The registry: one series per endpoint plus per-stage histograms.
#[derive(Debug, Default)]
pub struct Metrics {
    series: [EndpointSeries; 8],
    stages: [StageSeries; em_obs::N_STAGES],
    slow_requests: AtomicU64,
    rejects: [AtomicU64; 8],
}

impl Metrics {
    /// A fresh registry with all counters at zero.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Records one request: its endpoint, latency, and whether it was
    /// answered with a non-2xx status.
    // em-lint: allow(panic-in-request-path) -- endpoint/bucket indices are bounded by Endpoint::index() and position()'s unwrap_or fallback
    pub fn record(&self, endpoint: Endpoint, latency_us: u64, is_error: bool) {
        let series = &self.series[endpoint.index()];
        series.requests.fetch_add(1, Ordering::Relaxed);
        if is_error {
            series.errors.fetch_add(1, Ordering::Relaxed);
        }
        series
            .latency_sum_us
            .fetch_add(latency_us, Ordering::Relaxed);
        let bucket = LATENCY_BUCKETS_US
            .iter()
            .position(|&bound| latency_us <= bound)
            .unwrap_or(LATENCY_BUCKETS_US.len());
        series.bucket_counts[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Total requests recorded for an endpoint.
    pub fn requests(&self, endpoint: Endpoint) -> u64 {
        self.series[endpoint.index()]
            .requests
            .load(Ordering::Relaxed)
    }

    /// Folds one request's per-stage timings (an [`em_obs::Collector`]
    /// filled during `/explain`) into the stage histograms. Stages the
    /// request never entered (e.g. everything on a cache hit) are skipped
    /// rather than observed as zeros.
    // em-lint: allow(panic-in-request-path) -- stage/bucket indices are bounded by Stage::index() and position()'s unwrap_or fallback
    pub fn record_explain_stages(&self, trace: &em_obs::Collector) {
        for stage in em_obs::Stage::all() {
            if trace.stage_entries(stage) == 0 {
                continue;
            }
            let us = trace.stage_nanos(stage) / 1_000;
            let series = &self.stages[stage.index()];
            series.count.fetch_add(1, Ordering::Relaxed);
            series.sum_us.fetch_add(us, Ordering::Relaxed);
            let bucket = LATENCY_BUCKETS_US
                .iter()
                .position(|&bound| us <= bound)
                .unwrap_or(LATENCY_BUCKETS_US.len());
            series.bucket_counts[bucket].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counts one request that exceeded the slow-request threshold.
    pub fn record_slow(&self) {
        self.slow_requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests counted by [`Metrics::record_slow`].
    pub fn slow_requests(&self) -> u64 {
        self.slow_requests.load(Ordering::Relaxed)
    }

    /// Counts one rejected/abandoned connection under its cause. Rejects
    /// are deliberately **not** latency observations: a shed or reaped
    /// connection has no meaningful service latency, and recording a
    /// fabricated one (the old `0 µs` shed sample) drags the latency
    /// percentiles toward zero exactly when the server is overloaded.
    pub fn record_reject(&self, cause: RejectCause) {
        // em-lint: allow(panic-in-request-path) -- RejectCause::index() < 8 by construction, the array is 8 long
        self.rejects[cause.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Connections counted by [`Metrics::record_reject`] for a cause.
    pub fn rejects(&self, cause: RejectCause) -> u64 {
        // em-lint: allow(panic-in-request-path) -- RejectCause::index() < 8 by construction, the array is 8 long
        self.rejects[cause.index()].load(Ordering::Relaxed)
    }

    /// Renders the Prometheus text exposition, including the cache
    /// counters passed in (the cache lives next to the registry in the
    /// server state).
    // em-lint: allow(panic-in-request-path) -- every index is an enum index or i < LATENCY_BUCKETS_US.len() from enumerate(); arrays are one cell longer for the +Inf bucket
    pub fn render(&self, cache: &CacheStats, cache_len: usize) -> String {
        let mut out = String::new();
        out.push_str("# TYPE em_serve_requests_total counter\n");
        for ep in Endpoint::all() {
            let s = &self.series[ep.index()];
            out.push_str(&format!(
                "em_serve_requests_total{{endpoint=\"{}\"}} {}\n",
                ep.label(),
                s.requests.load(Ordering::Relaxed)
            ));
        }
        out.push_str("# TYPE em_serve_request_errors_total counter\n");
        for ep in Endpoint::all() {
            let s = &self.series[ep.index()];
            out.push_str(&format!(
                "em_serve_request_errors_total{{endpoint=\"{}\"}} {}\n",
                ep.label(),
                s.errors.load(Ordering::Relaxed)
            ));
        }
        out.push_str("# TYPE em_serve_request_latency_us histogram\n");
        for ep in Endpoint::all() {
            let s = &self.series[ep.index()];
            let mut cumulative = 0u64;
            for (i, &bound) in LATENCY_BUCKETS_US.iter().enumerate() {
                cumulative += s.bucket_counts[i].load(Ordering::Relaxed);
                out.push_str(&format!(
                    "em_serve_request_latency_us_bucket{{endpoint=\"{}\",le=\"{}\"}} {}\n",
                    ep.label(),
                    bound,
                    cumulative
                ));
            }
            cumulative += s.bucket_counts[LATENCY_BUCKETS_US.len()].load(Ordering::Relaxed);
            out.push_str(&format!(
                "em_serve_request_latency_us_bucket{{endpoint=\"{}\",le=\"+Inf\"}} {}\n",
                ep.label(),
                cumulative
            ));
            out.push_str(&format!(
                "em_serve_request_latency_us_sum{{endpoint=\"{}\"}} {}\n",
                ep.label(),
                s.latency_sum_us.load(Ordering::Relaxed)
            ));
            out.push_str(&format!(
                "em_serve_request_latency_us_count{{endpoint=\"{}\"}} {}\n",
                ep.label(),
                s.requests.load(Ordering::Relaxed)
            ));
        }
        out.push_str("# TYPE em_serve_stage_latency_us histogram\n");
        for stage in em_obs::Stage::all() {
            let s = &self.stages[stage.index()];
            let mut cumulative = 0u64;
            for (i, &bound) in LATENCY_BUCKETS_US.iter().enumerate() {
                cumulative += s.bucket_counts[i].load(Ordering::Relaxed);
                out.push_str(&format!(
                    "em_serve_stage_latency_us_bucket{{stage=\"{}\",le=\"{}\"}} {}\n",
                    stage.label(),
                    bound,
                    cumulative
                ));
            }
            cumulative += s.bucket_counts[LATENCY_BUCKETS_US.len()].load(Ordering::Relaxed);
            out.push_str(&format!(
                "em_serve_stage_latency_us_bucket{{stage=\"{}\",le=\"+Inf\"}} {}\n",
                stage.label(),
                cumulative
            ));
            out.push_str(&format!(
                "em_serve_stage_latency_us_sum{{stage=\"{}\"}} {}\n",
                stage.label(),
                s.sum_us.load(Ordering::Relaxed)
            ));
            out.push_str(&format!(
                "em_serve_stage_latency_us_count{{stage=\"{}\"}} {}\n",
                stage.label(),
                s.count.load(Ordering::Relaxed)
            ));
        }
        out.push_str("# TYPE em_serve_rejects_total counter\n");
        for cause in RejectCause::all() {
            out.push_str(&format!(
                "em_serve_rejects_total{{cause=\"{}\"}} {}\n",
                cause.label(),
                self.rejects[cause.index()].load(Ordering::Relaxed)
            ));
        }
        out.push_str("# TYPE em_serve_slow_requests_total counter\n");
        out.push_str(&format!(
            "em_serve_slow_requests_total {}\n",
            self.slow_requests.load(Ordering::Relaxed)
        ));
        out.push_str("# TYPE em_serve_cache_hits_total counter\n");
        out.push_str(&format!(
            "em_serve_cache_hits_total {}\n",
            cache.hits.load(Ordering::Relaxed)
        ));
        out.push_str("# TYPE em_serve_cache_misses_total counter\n");
        out.push_str(&format!(
            "em_serve_cache_misses_total {}\n",
            cache.misses.load(Ordering::Relaxed)
        ));
        out.push_str("# TYPE em_serve_cache_evictions_total counter\n");
        out.push_str(&format!(
            "em_serve_cache_evictions_total {}\n",
            cache.evictions.load(Ordering::Relaxed)
        ));
        out.push_str("# TYPE em_serve_cache_entries gauge\n");
        out.push_str(&format!("em_serve_cache_entries {cache_len}\n"));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_fills_the_right_bucket() {
        let m = Metrics::new();
        m.record(Endpoint::Explain, 50, false); // <= 100
        m.record(Endpoint::Explain, 700, false); // <= 1000
        m.record(Endpoint::Explain, 10_000_000, true); // overflow bucket
        assert_eq!(m.requests(Endpoint::Explain), 3);
        let text = m.render(&CacheStats::default(), 0);
        assert!(
            text.contains("em_serve_request_latency_us_bucket{endpoint=\"explain\",le=\"100\"} 1")
        );
        assert!(
            text.contains("em_serve_request_latency_us_bucket{endpoint=\"explain\",le=\"1000\"} 2")
        );
        assert!(
            text.contains("em_serve_request_latency_us_bucket{endpoint=\"explain\",le=\"+Inf\"} 3")
        );
        assert!(text.contains("em_serve_request_errors_total{endpoint=\"explain\"} 1"));
        assert!(text.contains("em_serve_request_latency_us_count{endpoint=\"explain\"} 3"));
    }

    #[test]
    fn buckets_are_cumulative_in_render() {
        let m = Metrics::new();
        for us in [50, 50, 400, 900, 4000] {
            m.record(Endpoint::Predict, us, false);
        }
        let text = m.render(&CacheStats::default(), 0);
        assert!(
            text.contains("em_serve_request_latency_us_bucket{endpoint=\"predict\",le=\"100\"} 2")
        );
        assert!(
            text.contains("em_serve_request_latency_us_bucket{endpoint=\"predict\",le=\"500\"} 3")
        );
        assert!(
            text.contains("em_serve_request_latency_us_bucket{endpoint=\"predict\",le=\"1000\"} 4")
        );
        assert!(
            text.contains("em_serve_request_latency_us_bucket{endpoint=\"predict\",le=\"5000\"} 5")
        );
    }

    #[test]
    fn stage_histograms_render_per_stage_series() {
        use em_obs::{Stage, Tracer};
        let m = Metrics::new();
        let trace = em_obs::Collector::new();
        trace.record_stage(Stage::ModelScoring, 2_000_000); // 2000 us
        trace.record_stage(Stage::SurrogateFit, 50_000); // 50 us
        m.record_explain_stages(&trace);
        m.record_slow();
        let text = m.render(&CacheStats::default(), 0);
        assert!(text
            .contains("em_serve_stage_latency_us_bucket{stage=\"model_scoring\",le=\"5000\"} 1"));
        assert!(text.contains("em_serve_stage_latency_us_sum{stage=\"model_scoring\"} 2000"));
        assert!(text.contains("em_serve_stage_latency_us_count{stage=\"model_scoring\"} 1"));
        assert!(text.contains("em_serve_stage_latency_us_count{stage=\"surrogate_fit\"} 1"));
        // Stages the request never entered still render (at zero).
        assert!(text.contains("em_serve_stage_latency_us_count{stage=\"tokenize\"} 0"));
        assert!(text.contains("em_serve_slow_requests_total 1"));
        assert_eq!(m.slow_requests(), 1);
    }

    #[test]
    fn cache_counters_are_rendered() {
        let m = Metrics::new();
        let stats = CacheStats::default();
        stats.hits.store(7, Ordering::Relaxed);
        stats.misses.store(3, Ordering::Relaxed);
        let text = m.render(&stats, 5);
        assert!(text.contains("em_serve_cache_hits_total 7"));
        assert!(text.contains("em_serve_cache_misses_total 3"));
        assert!(text.contains("em_serve_cache_entries 5"));
    }

    #[test]
    fn rejects_render_per_cause_without_latency_samples() {
        let m = Metrics::new();
        m.record_reject(RejectCause::Shed);
        m.record_reject(RejectCause::Shed);
        m.record_reject(RejectCause::HeaderDeadline);
        assert_eq!(m.rejects(RejectCause::Shed), 2);
        assert_eq!(m.rejects(RejectCause::HeaderDeadline), 1);
        let text = m.render(&CacheStats::default(), 0);
        assert!(text.contains("# TYPE em_serve_rejects_total counter"));
        assert!(text.contains("em_serve_rejects_total{cause=\"shed\"} 2"));
        assert!(text.contains("em_serve_rejects_total{cause=\"header_deadline\"} 1"));
        // Every cause renders a series even at zero, so scrapers see the
        // full taxonomy from the first scrape.
        for cause in RejectCause::all() {
            assert!(text.contains(&format!(
                "em_serve_rejects_total{{cause=\"{}\"}}",
                cause.label()
            )));
        }
        // Regression (shed-path metrics pollution): a reject is not a
        // latency observation — no endpoint series moved.
        for ep in Endpoint::all() {
            assert_eq!(m.requests(ep), 0);
        }
        assert!(text.contains("em_serve_request_latency_us_count{endpoint=\"other\"} 0"));
    }

    #[test]
    fn every_endpoint_has_a_requests_series() {
        let text = Metrics::new().render(&CacheStats::default(), 0);
        for ep in Endpoint::all() {
            assert!(text.contains(&format!(
                "em_serve_requests_total{{endpoint=\"{}\"}} 0",
                ep.label()
            )));
        }
    }
}
