//! A tiny blocking HTTP client for the router, integration tests, and
//! benches.
//!
//! Speaks exactly the dialect the server emits: one request per
//! connection, `Connection: close`, body read to EOF and checked against
//! `Content-Length`. Every exchange carries connect/read/write timeouts
//! ([`DEFAULT_TIMEOUT`] unless overridden) so callers fail fast against
//! a wedged server instead of hanging forever.
//!
//! Failures are typed ([`ClientError`]) by what a failover policy may do
//! with them: a [`ClientError::Connect`] means no request byte ever
//! reached the backend (safe to retry elsewhere), while
//! [`ClientError::Status`] means the backend answered — it carries the
//! full response (including `Retry-After`) so "backend said no" can be
//! passed through rather than treated as "backend down".

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::deadline::is_timeout;

/// Per-operation timeout applied by [`request`]: bounds the connect and
/// each read/write syscall. Generous, because a cold `/explain` trains
/// nothing but can still compute for seconds on a loaded CI box.
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(30);

/// A parsed response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Headers with lower-cased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The body.
    pub body: String,
}

impl ClientResponse {
    /// First header with the given lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why an exchange failed, separated by what a failover policy may do
/// about it (DESIGN.md §15).
#[derive(Debug)]
pub enum ClientError {
    /// TCP connect failed (refused, unreachable, or connect timeout): no
    /// request byte ever reached the backend, so retrying the same
    /// request against another backend cannot double-execute anything.
    Connect(std::io::Error),
    /// A read or write timed out *after* the connection was established.
    /// The backend may have received — and may still be processing — the
    /// request; only idempotent requests are safe to retry.
    Timeout(std::io::Error),
    /// The backend answered with a non-2xx status. This is not a
    /// transport failure: the full response (including any `Retry-After`)
    /// is carried so a proxy can pass it through verbatim.
    Status(ClientResponse),
    /// The backend spoke, but not valid HTTP — or the connection broke
    /// mid-exchange with a non-timeout error. The request reached the
    /// peer, so this is distinct from [`ClientError::Connect`].
    Protocol(std::io::Error),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Connect(e) => write!(f, "connect failed: {e}"),
            ClientError::Timeout(e) => write!(f, "exchange timed out: {e}"),
            ClientError::Status(r) => write!(f, "backend answered {}", r.status),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl ClientError {
    /// Collapses the typed error back into `std::io::Error` for the
    /// legacy [`request`] API (which reports any parsed response as `Ok`
    /// and everything else as IO).
    fn into_io(self) -> std::io::Error {
        match self {
            ClientError::Connect(e) | ClientError::Timeout(e) | ClientError::Protocol(e) => e,
            ClientError::Status(r) => {
                std::io::Error::other(format!("backend answered {}", r.status))
            }
        }
    }
}

/// Sends one request and reads the full response, under
/// [`DEFAULT_TIMEOUT`]. Any parsed response — whatever its status — is
/// `Ok`; use [`exchange`] when the caller needs failures typed.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<ClientResponse> {
    request_with_timeout(addr, method, path, body, DEFAULT_TIMEOUT)
}

/// [`request`] with an explicit timeout bounding the connect and each
/// individual read/write syscall (not the exchange as a whole).
pub fn request_with_timeout(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
    timeout: Duration,
) -> std::io::Result<ClientResponse> {
    transfer(addr, method, path, body, timeout).map_err(ClientError::into_io)
}

/// Sends one request under [`DEFAULT_TIMEOUT`], with failures typed for
/// failover: `Ok` is a 2xx response; a non-2xx answer is
/// [`ClientError::Status`] carrying the full response.
pub fn exchange(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> Result<ClientResponse, ClientError> {
    exchange_with_timeout(addr, method, path, body, DEFAULT_TIMEOUT)
}

/// [`exchange`] with an explicit timeout. `timeout` bounds the connect
/// and each individual read/write syscall; a server that accepts but
/// never answers fails the first read within one `timeout` instead of
/// hanging forever. Sub-millisecond values are raised to 1 ms — a zero
/// socket timeout means "block forever", the opposite of what a caller
/// asking for a tiny timeout wants.
pub fn exchange_with_timeout(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
    timeout: Duration,
) -> Result<ClientResponse, ClientError> {
    let response = transfer(addr, method, path, body, timeout)?;
    if (200..300).contains(&response.status) {
        Ok(response)
    } else {
        Err(ClientError::Status(response))
    }
}

/// The raw exchange: connect, send, read to EOF, parse. `Ok` is any
/// parsed response; errors are typed by phase (connect vs. established).
fn transfer(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
    timeout: Duration,
) -> Result<ClientResponse, ClientError> {
    let timeout = timeout.max(Duration::from_millis(1));
    // A connect timeout is still a *connect* failure: the handshake
    // never completed, so no byte reached the backend.
    let stream = TcpStream::connect_timeout(&addr, timeout).map_err(ClientError::Connect)?;
    let established = |e: std::io::Error| {
        if is_timeout(&e) {
            ClientError::Timeout(e)
        } else {
            ClientError::Protocol(e)
        }
    };
    stream
        .set_read_timeout(Some(timeout))
        .map_err(ClientError::Protocol)?;
    stream
        .set_write_timeout(Some(timeout))
        .map_err(ClientError::Protocol)?;
    let wire = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    let mut stream = stream;
    stream.write_all(wire.as_bytes()).map_err(established)?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).map_err(established)?;
    parse_response(&raw).map_err(ClientError::Protocol)
}

fn bad(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string())
}

fn parse_response(raw: &[u8]) -> std::io::Result<ClientResponse> {
    let text = std::str::from_utf8(raw).map_err(|_| bad("response is not utf-8"))?;
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| bad("no header/body separator"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or_else(|| bad("empty response"))?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad("bad status line"))?;
    let mut headers = Vec::new();
    for line in lines {
        let (name, value) = line.split_once(':').ok_or_else(|| bad("bad header"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let response = ClientResponse {
        status,
        headers,
        body: body.to_string(),
    };
    if let Some(len) = response.header("content-length") {
        let len: usize = len.parse().map_err(|_| bad("bad content-length"))?;
        if response.body.len() != len {
            return Err(bad("truncated body"));
        }
    }
    Ok(response)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Accepts exactly one connection and answers with `wire` verbatim.
    fn one_shot_server(wire: &'static str) -> SocketAddr {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        std::thread::spawn(move || {
            if let Ok((mut stream, _)) = listener.accept() {
                let mut sink = [0u8; 4096];
                let _ = stream.read(&mut sink); // drain the request first
                let _ = stream.write_all(wire.as_bytes());
            }
        });
        addr
    }

    #[test]
    fn parses_a_response() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 2\r\nX-Cache: hit\r\n\r\n{}";
        let r = parse_response(raw).unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.header("x-cache"), Some("hit"));
        assert_eq!(r.body, "{}");
    }

    #[test]
    fn rejects_truncated_bodies() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\n{}";
        assert!(parse_response(raw).is_err());
    }

    #[test]
    fn connect_refused_is_a_connect_error() {
        // Bind then drop: the port goes back to the kernel, so the
        // connect is refused — the variant a failover policy may act on.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        drop(listener);
        let err = exchange_with_timeout(addr, "GET", "/healthz", "", Duration::from_millis(500))
            .expect_err("connect to a closed port must fail");
        assert!(matches!(err, ClientError::Connect(_)), "got {err:?}");
    }

    #[test]
    fn established_but_silent_is_a_timeout_error() {
        // A listener that never answers (the kernel completes the
        // handshake from the backlog either way): the request reached
        // the peer, so this must NOT look like a connect failure.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let started = std::time::Instant::now();
        let err = exchange_with_timeout(addr, "GET", "/healthz", "", Duration::from_millis(200))
            .expect_err("unresponsive server must time the client out");
        assert!(matches!(err, ClientError::Timeout(_)), "got {err:?}");
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "client failed fast, not after {:?}",
            started.elapsed()
        );
        drop(listener);
    }

    #[test]
    fn non_2xx_is_a_status_error_carrying_the_response() {
        let addr = one_shot_server(
            "HTTP/1.1 503 Service Unavailable\r\nRetry-After: 1\r\nContent-Length: 2\r\n\r\n{}",
        );
        let err = exchange_with_timeout(addr, "POST", "/explain", "{}", Duration::from_secs(5))
            .expect_err("503 must be a Status error");
        match err {
            ClientError::Status(response) => {
                assert_eq!(response.status, 503);
                assert_eq!(response.header("retry-after"), Some("1"));
                assert_eq!(response.body, "{}");
            }
            other => panic!("expected Status, got {other:?}"),
        }
        // The legacy API reports the same answer as Ok: tests assert on
        // 4xx/5xx statuses directly.
        let addr = one_shot_server(
            "HTTP/1.1 503 Service Unavailable\r\nRetry-After: 1\r\nContent-Length: 2\r\n\r\n{}",
        );
        let legacy =
            request_with_timeout(addr, "POST", "/explain", "{}", Duration::from_secs(5)).unwrap();
        assert_eq!(legacy.status, 503);
    }

    #[test]
    fn garbage_bytes_are_a_protocol_error() {
        let addr = one_shot_server("this is not http at all");
        let err = exchange_with_timeout(addr, "GET", "/healthz", "", Duration::from_secs(5))
            .expect_err("garbage must be a Protocol error");
        assert!(matches!(err, ClientError::Protocol(_)), "got {err:?}");
    }

    #[test]
    fn a_2xx_exchange_is_ok() {
        let addr = one_shot_server("HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\n{}");
        let response =
            exchange_with_timeout(addr, "GET", "/healthz", "", Duration::from_secs(5)).unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(response.body, "{}");
    }
}
