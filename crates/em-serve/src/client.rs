//! A tiny blocking HTTP client for the integration tests and benches.
//!
//! Speaks exactly the dialect the server emits: one request per
//! connection, `Connection: close`, body read to EOF and checked against
//! `Content-Length`.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

/// A parsed response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Headers with lower-cased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The body.
    pub body: String,
}

impl ClientResponse {
    /// First header with the given lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Sends one request and reads the full response.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<ClientResponse> {
    let mut stream = TcpStream::connect(addr)?;
    let wire = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(wire.as_bytes())?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

fn bad(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string())
}

fn parse_response(raw: &[u8]) -> std::io::Result<ClientResponse> {
    let text = std::str::from_utf8(raw).map_err(|_| bad("response is not utf-8"))?;
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| bad("no header/body separator"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or_else(|| bad("empty response"))?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad("bad status line"))?;
    let mut headers = Vec::new();
    for line in lines {
        let (name, value) = line.split_once(':').ok_or_else(|| bad("bad header"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let response = ClientResponse {
        status,
        headers,
        body: body.to_string(),
    };
    if let Some(len) = response.header("content-length") {
        let len: usize = len.parse().map_err(|_| bad("bad content-length"))?;
        if response.body.len() != len {
            return Err(bad("truncated body"));
        }
    }
    Ok(response)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_response() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 2\r\nX-Cache: hit\r\n\r\n{}";
        let r = parse_response(raw).unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.header("x-cache"), Some("hit"));
        assert_eq!(r.body, "{}");
    }

    #[test]
    fn rejects_truncated_bodies() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\n{}";
        assert!(parse_response(raw).is_err());
    }
}
