//! A tiny blocking HTTP client for the integration tests and benches.
//!
//! Speaks exactly the dialect the server emits: one request per
//! connection, `Connection: close`, body read to EOF and checked against
//! `Content-Length`. Every exchange carries connect/read/write timeouts
//! ([`DEFAULT_TIMEOUT`] unless overridden) so tests and benches fail
//! fast against a wedged server instead of hanging forever.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Per-operation timeout applied by [`request`]: bounds the connect and
/// each read/write syscall. Generous, because a cold `/explain` trains
/// nothing but can still compute for seconds on a loaded CI box.
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(30);

/// A parsed response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Headers with lower-cased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The body.
    pub body: String,
}

impl ClientResponse {
    /// First header with the given lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Sends one request and reads the full response, under
/// [`DEFAULT_TIMEOUT`].
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<ClientResponse> {
    request_with_timeout(addr, method, path, body, DEFAULT_TIMEOUT)
}

/// Sends one request and reads the full response. `timeout` bounds the
/// connect and each individual read/write syscall (not the exchange as a
/// whole); a server that accepts but never answers fails the first read
/// within one `timeout` instead of hanging forever. Sub-millisecond
/// values are raised to 1 ms — a zero socket timeout means "block
/// forever", the opposite of what a caller asking for a tiny timeout
/// wants.
pub fn request_with_timeout(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
    timeout: Duration,
) -> std::io::Result<ClientResponse> {
    let timeout = timeout.max(Duration::from_millis(1));
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let wire = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(wire.as_bytes())?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

fn bad(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string())
}

fn parse_response(raw: &[u8]) -> std::io::Result<ClientResponse> {
    let text = std::str::from_utf8(raw).map_err(|_| bad("response is not utf-8"))?;
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| bad("no header/body separator"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or_else(|| bad("empty response"))?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad("bad status line"))?;
    let mut headers = Vec::new();
    for line in lines {
        let (name, value) = line.split_once(':').ok_or_else(|| bad("bad header"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let response = ClientResponse {
        status,
        headers,
        body: body.to_string(),
    };
    if let Some(len) = response.header("content-length") {
        let len: usize = len.parse().map_err(|_| bad("bad content-length"))?;
        if response.body.len() != len {
            return Err(bad("truncated body"));
        }
    }
    Ok(response)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_response() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 2\r\nX-Cache: hit\r\n\r\n{}";
        let r = parse_response(raw).unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.header("x-cache"), Some("hit"));
        assert_eq!(r.body, "{}");
    }

    #[test]
    fn rejects_truncated_bodies() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\n{}";
        assert!(parse_response(raw).is_err());
    }

    #[test]
    fn times_out_fast_against_an_unresponsive_server() {
        // Regression: the client used to connect with no timeouts at
        // all, so a wedged server hung integration tests and benches
        // forever. A listener that never answers (the kernel completes
        // the handshake from the backlog either way) must fail the read
        // within roughly one timeout, not block.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let started = std::time::Instant::now();
        let err = request_with_timeout(addr, "GET", "/healthz", "", Duration::from_millis(200))
            .expect_err("unresponsive server must time the client out");
        assert!(
            crate::deadline::is_timeout(&err),
            "expected a timeout, got {err:?}"
        );
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "client failed fast, not after {:?}",
            started.elapsed()
        );
        drop(listener);
    }
}
