//! The HTTP server: accept loop, worker pool, routing, and shutdown.
//!
//! One listener thread accepts connections and pushes them onto a
//! [`BoundedQueue`]; `em_par::scoped_workers` runs the worker pool that
//! drains it. When the queue is full the accept thread sheds with a
//! non-blocking 503 + `Retry-After` instead of queueing unbounded —
//! never waiting on a client socket, because every other user's `accept`
//! is behind it. Each picked-up connection runs under one [`Deadline`]
//! covering request read, compute, and response write; queued
//! connections older than the admission bound are discarded unanswered.
//! Every rejection is attributed to a cause in
//! `em_serve_rejects_total{cause=...}` (DESIGN.md §14). `POST /shutdown`
//! flips an atomic flag and pokes the listener with a loopback
//! connection so `accept` wakes up; closing the queue then lets every
//! in-flight request finish before `run` returns.

use std::io::Write;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use em_entity::{MatchModel, Schema};
use em_obs::Tracer;
use em_par::ParallelismConfig;

use crate::cache::ShardedCache;
use crate::codec::{self, ExplainOptions};
use crate::deadline::{is_timeout, Deadline, DeadlineStream};
use crate::http::{read_request, HttpError, ReadPhase, Request, Response};
use crate::json::Value;
use crate::metrics::{Endpoint, Metrics, RejectCause};
use crate::pool::{BoundedQueue, PushError};

/// Budget for writing a 408 after the connection deadline has already
/// expired. The deadline is spent, but the client may still be reading;
/// a short fixed grace keeps the courtesy answer from re-wedging the
/// worker the deadline just freed.
const REJECT_WRITE_GRACE: Duration = Duration::from_secs(1);

/// Bound on the shutdown self-wake connect, so `run` can never wedge
/// behind its own wake-up.
const WAKE_CONNECT_TIMEOUT: Duration = Duration::from_secs(1);

/// Server tunables.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker-pool sizing; `worker_count()` resolves `threads: 0` to the
    /// core count.
    pub parallelism: ParallelismConfig,
    /// Accepted-but-unserved connections held before shedding with 503.
    pub queue_depth: usize,
    /// Explanation-cache capacity (entries).
    pub cache_capacity: usize,
    /// Explanation-cache shard count.
    pub cache_shards: usize,
    /// Default explainer options, overridable per request via `"config"`.
    pub defaults: ExplainOptions,
    /// Decision threshold for `POST /predict`.
    pub predict_threshold: f64,
    /// An `/explain` request slower than this (wall-clock, milliseconds)
    /// is logged to stderr with its stage breakdown and counted in
    /// `em_serve_slow_requests_total`. `None` disables slow-request
    /// logging entirely.
    pub slow_request_ms: Option<u64>,
    /// Total wall-clock budget for one connection once a worker picks it
    /// up: reading the request (however slowly the client drips it),
    /// computing, and writing the response all share this one deadline.
    pub request_timeout: Duration,
    /// Admission bound: a connection that waited in the queue longer
    /// than this is discarded unanswered — its client has almost
    /// certainly timed out, and serving it would waste compute.
    pub max_queue_age: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            parallelism: ParallelismConfig::auto(),
            queue_depth: 64,
            cache_capacity: 1024,
            cache_shards: 8,
            defaults: ExplainOptions::default(),
            predict_threshold: 0.5,
            slow_request_ms: Some(1_000),
            request_timeout: Duration::from_secs(30),
            max_queue_age: Duration::from_secs(10),
        }
    }
}

/// Everything the request handlers share.
struct AppState {
    schema: Schema,
    model: Box<dyn MatchModel + Send + Sync>,
    cache: ShardedCache,
    metrics: Metrics,
    defaults: ExplainOptions,
    predict_threshold: f64,
    slow_request_ms: Option<u64>,
    request_timeout: Duration,
    max_queue_age: Duration,
    shutdown: AtomicBool,
    /// Set by `POST /drain`: the node keeps serving, but `GET /readyz`
    /// answers 503 so a routing tier stops sending it new traffic.
    draining: AtomicBool,
    /// The accept queue lives in the shared state (not as a local of
    /// `run`) so `GET /readyz` can report its current depth.
    queue: BoundedQueue<TcpStream>,
    addr: SocketAddr,
}

/// A bound explanation server. [`Server::run`] blocks until shutdown;
/// [`Server::spawn`] runs it on a background thread for tests.
pub struct Server {
    listener: TcpListener,
    workers: usize,
    queue_depth: usize,
    state: AppState,
}

impl std::fmt::Debug for Server {
    // Manual impl: `AppState` holds a `Box<dyn MatchModel>`, which cannot
    // be printed; the bind address and sizing are what a log line needs.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.state.addr)
            .field("workers", &self.workers)
            .field("queue_depth", &self.queue_depth)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Binds the listener and assembles the server state. Bind to port 0
    /// for an ephemeral port (tests).
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        schema: Schema,
        model: Box<dyn MatchModel + Send + Sync>,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            listener,
            workers: config.parallelism.worker_count(),
            queue_depth: config.queue_depth,
            state: AppState {
                schema,
                model,
                cache: ShardedCache::new(config.cache_capacity, config.cache_shards),
                metrics: Metrics::new(),
                defaults: config.defaults,
                predict_threshold: config.predict_threshold,
                slow_request_ms: config.slow_request_ms,
                request_timeout: config.request_timeout,
                max_queue_age: config.max_queue_age,
                shutdown: AtomicBool::new(false),
                draining: AtomicBool::new(false),
                queue: BoundedQueue::new(config.queue_depth),
                addr,
            },
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Serves until a `POST /shutdown` arrives, then drains in-flight
    /// requests and returns.
    pub fn run(self) {
        let state = &self.state;
        let queue = &state.queue;
        em_par::scoped_workers(
            self.workers,
            |_worker| {
                while let Some(conn) = queue.pop() {
                    // Admission control: a connection that outwaited the
                    // queue-age bound belongs to a client that has almost
                    // certainly timed out; dropping the stream closes it
                    // without spending any compute.
                    if conn.age() > state.max_queue_age {
                        state.metrics.record_reject(RejectCause::StaleQueue);
                        continue;
                    }
                    handle_connection(state, conn.item);
                }
            },
            || {
                for incoming in self.listener.incoming() {
                    if state.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let stream = match incoming {
                        Ok(s) => s,
                        Err(_) => continue,
                    };
                    if let Err(PushError::Full(stream) | PushError::Closed(stream)) =
                        queue.push(stream)
                    {
                        shed_without_blocking(state, &stream);
                    }
                }
                queue.close();
            },
        );
    }

    /// Runs the server on a background thread, returning a handle with the
    /// bound address.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.local_addr();
        let thread = std::thread::spawn(move || self.run());
        ServerHandle { addr, thread }
    }
}

/// Handle to a [`Server::spawn`]ed server.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    thread: std::thread::JoinHandle<()>,
}

impl ServerHandle {
    /// The server's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the server to finish (after a `/shutdown` request).
    pub fn join(self) {
        // em-lint: allow(panic-in-request-path) -- shutdown path; propagating a worker panic is the point
        self.thread.join().expect("server thread panicked");
    }
}

fn error_body(message: &str) -> String {
    Value::object(vec![("error", Value::string(message))]).to_json()
}

/// Sheds a connection from the accept thread without ever blocking it:
/// the socket is flipped to non-blocking, already-arrived request bytes
/// are drained (bounded, never waiting — closing with unread received
/// data makes the kernel send RST instead of FIN, and the RST destroys
/// the 503 sitting unread in the client's buffers), and the 503 (with
/// `Retry-After`) is attempted as a *single* write. A fresh connection's
/// send buffer is empty, so the ~100-byte response virtually always
/// fits; a peer whose buffer somehow cannot take it (never-reading
/// client) just loses the connection — the one thing the accept loop
/// must never do is wait on a client socket, because every other user's
/// `accept` is behind it.
fn shed_without_blocking(state: &AppState, stream: &TcpStream) {
    let response =
        Response::json(503, error_body("server overloaded")).with_header("Retry-After", "1");
    let wire = response.to_wire();
    let nonblocking = stream.set_nonblocking(true).is_ok();
    if nonblocking {
        let mut sink = [0u8; 4096];
        for _ in 0..32 {
            if !matches!(std::io::Read::read(&mut &*stream, &mut sink), Ok(n) if n > 0) {
                break;
            }
        }
    }
    let written =
        nonblocking && matches!((&mut &*stream).write(wire.as_bytes()), Ok(n) if n == wire.len());
    // A reject is counted, never a latency sample: a shed connection has
    // no service latency, and a fabricated 0 µs observation would drag
    // the `Other` percentiles toward zero exactly under overload.
    state.metrics.record_reject(if written {
        RejectCause::Shed
    } else {
        RejectCause::ShedDrop
    });
}

/// Reads, routes, answers, and records one connection, all under one
/// [`Deadline`]: every socket read and write is charged against the same
/// `request_timeout` budget, so no pacing a client chooses can hold the
/// worker past it (DESIGN.md §14).
fn handle_connection(state: &AppState, stream: TcpStream) {
    let deadline = Deadline::starting_now(state.request_timeout);
    let start = Instant::now();
    let mut reader = DeadlineStream::new(&stream, deadline);
    let (endpoint, response, is_shutdown) = match read_request(&mut reader) {
        Ok(request) => route(state, &request),
        // The peer connected and closed without sending a byte (port
        // probe, health checker). Nothing was asked, so nothing is
        // answered and no counter is bumped.
        Err(HttpError::Closed) => return,
        Err(HttpError::Timeout(phase)) => {
            // The deadline expired mid-request. Attribute the cause —
            // connect-and-hold (not one byte), header drip, or body
            // drip — then answer 408 under a short grace budget (the
            // client may well still be reading) and reap the connection.
            let cause = match phase {
                ReadPhase::Header if reader.bytes_read() == 0 => RejectCause::Idle,
                ReadPhase::Header => RejectCause::HeaderDeadline,
                ReadPhase::Body => RejectCause::BodyDeadline,
            };
            state.metrics.record_reject(cause);
            let grace = Deadline::starting_now(REJECT_WRITE_GRACE);
            let _ = Response::json(408, error_body("request deadline exceeded"))
                .write_to(&mut DeadlineStream::new(&stream, grace));
            return;
        }
        Err(HttpError::BodyTooLarge) => (
            Endpoint::Other,
            Response::json(413, error_body("request body too large")),
            false,
        ),
        Err(err) => {
            if matches!(err, HttpError::Io(_)) {
                // The peer closed or reset mid-request; the 400 below is
                // written into the void on a full close, but half-closed
                // peers (`shutdown(Write)`) still read it.
                state.metrics.record_reject(RejectCause::PeerAbort);
            }
            (
                Endpoint::Other,
                Response::json(400, error_body(&err.to_string())),
                false,
            )
        }
    };
    let latency_us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
    state
        .metrics
        .record(endpoint, latency_us, response.status >= 400);
    // The response write shares the connection's deadline: a peer that
    // accepts bytes too slowly (or never reads) is cut off when the
    // budget runs out — silently, since no response can follow a partial
    // response.
    if let Err(err) = response.write_to(&mut DeadlineStream::new(&stream, deadline)) {
        if is_timeout(&err) {
            state.metrics.record_reject(RejectCause::WriteDeadline);
        }
    }
    drop(stream);
    if is_shutdown {
        state.shutdown.store(true, Ordering::SeqCst);
        wake_accept_loop(state.addr);
    }
}

/// Pokes the accept loop with a loopback connection so it observes the
/// shutdown flag. The *bound* address is not used directly: a wildcard
/// bind (`0.0.0.0` / `[::]`) is not a connectable destination on every
/// platform, so the wake aims at the loopback of the same family on the
/// bound port, with a connect timeout so shutdown can never wedge behind
/// its own wake-up. The dummy connection is dropped unanswered.
fn wake_accept_loop(addr: SocketAddr) {
    let ip = match addr.ip() {
        IpAddr::V4(v4) if v4.is_unspecified() => IpAddr::V4(Ipv4Addr::LOCALHOST),
        IpAddr::V6(v6) if v6.is_unspecified() => IpAddr::V6(Ipv6Addr::LOCALHOST),
        ip => ip,
    };
    let _ = TcpStream::connect_timeout(&SocketAddr::new(ip, addr.port()), WAKE_CONNECT_TIMEOUT);
}

/// Maps a request to (endpoint, response, initiate-shutdown).
fn route(state: &AppState, request: &Request) -> (Endpoint, Response, bool) {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/explain") => (Endpoint::Explain, handle_explain(state, request), false),
        ("POST", "/predict") => (Endpoint::Predict, handle_predict(state, request), false),
        ("GET", "/healthz") => (
            Endpoint::Healthz,
            Response::json(
                200,
                Value::object(vec![("status", Value::string("ok"))]).to_json(),
            ),
            false,
        ),
        ("GET", "/readyz") => (Endpoint::Readyz, handle_readyz(state), false),
        ("GET", "/metrics") => (
            Endpoint::Metrics,
            Response::text(
                200,
                state.metrics.render(state.cache.stats(), state.cache.len()),
            ),
            false,
        ),
        ("POST", "/drain") => {
            state.draining.store(true, Ordering::SeqCst);
            (
                Endpoint::Drain,
                Response::json(
                    200,
                    Value::object(vec![("draining", true.into())]).to_json(),
                ),
                false,
            )
        }
        ("POST", "/shutdown") => (
            Endpoint::Shutdown,
            Response::json(
                200,
                Value::object(vec![("shutting_down", true.into())]).to_json(),
            ),
            true,
        ),
        (_, "/explain" | "/predict" | "/drain" | "/shutdown") => (
            Endpoint::Other,
            Response::json(405, error_body("use POST")),
            false,
        ),
        (_, "/healthz" | "/readyz" | "/metrics") => (
            Endpoint::Other,
            Response::json(405, error_body("use GET")),
            false,
        ),
        _ => (
            Endpoint::Other,
            Response::json(404, error_body("no such endpoint")),
            false,
        ),
    }
}

/// `GET /readyz`: readiness, as distinct from `/healthz` liveness. A
/// draining node (after `POST /drain`) is alive — it still answers
/// in-flight and direct traffic — but not *ready*: it answers 503 here so
/// a routing tier stops assigning it new keys before the queue ever
/// sheds. The body always reports the draining flag and the current
/// accept-queue depth so operators can watch a drain complete.
fn handle_readyz(state: &AppState) -> Response {
    let draining = state.draining.load(Ordering::SeqCst);
    let body = Value::object(vec![
        ("ready", (!draining).into()),
        ("draining", draining.into()),
        ("queue_depth", state.queue.len().into()),
    ])
    .to_json();
    Response::json(if draining { 503 } else { 200 }, body)
}

fn handle_explain(state: &AppState, request: &Request) -> Response {
    let start = Instant::now(); // em-lint: allow(nondet-taint) -- latency for the X-Compute-Micros header and metrics only; never touches explanation bytes
    let decoded = match codec::decode_explain_request(&request.body, &state.schema, &state.defaults)
    {
        Ok(d) => d,
        Err(msg) => return Response::json(400, error_body(&msg)),
    };
    let key = codec::cache_key(&state.schema, &decoded);
    let trace = em_obs::Collector::new();
    let (body, cache_state) = match state.cache.get(&key) {
        // The cached body is bit-identical to a fresh computation (the
        // explanation is a deterministic function of the key), so only the
        // X-Cache header distinguishes this path.
        Some(body) => {
            trace.add(em_obs::Counter::CacheHits, 1);
            (body, "hit")
        }
        None => {
            trace.add(em_obs::Counter::CacheMisses, 1);
            let body =
                codec::run_explain_traced(&state.model, &state.schema, &decoded, &trace).to_json();
            state.cache.insert(key, body.clone());
            (body, "miss")
        }
    };
    state.metrics.record_explain_stages(&trace);
    let total_us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
    let timing = timing_header(total_us, &trace);
    if state
        .slow_request_ms
        .is_some_and(|ms| total_us > ms.saturating_mul(1_000))
    {
        state.metrics.record_slow();
        eprintln!("em-serve: slow request POST /explain ({timing})");
    }
    Response::json(200, body)
        .with_header("X-Cache", cache_state)
        .with_header("X-Timing", &timing)
}

/// Formats the `X-Timing` header: total handler wall-clock plus one
/// `stage=<n>us` entry for every pipeline stage the request entered (a
/// cache hit therefore reports only `total`).
fn timing_header(total_us: u64, trace: &em_obs::Collector) -> String {
    use std::fmt::Write as _;
    let mut out = format!("total={total_us}us");
    for stage in em_obs::Stage::all() {
        if trace.stage_entries(stage) == 0 {
            continue;
        }
        let _ = write!(
            out,
            "; {}={}us",
            stage.label(),
            trace.stage_nanos(stage) / 1_000
        );
    }
    out
}

fn handle_predict(state: &AppState, request: &Request) -> Response {
    let root = match Value::parse(&request.body) {
        Ok(v) => v,
        Err(e) => return Response::json(400, error_body(&e.to_string())),
    };
    let pair = match codec::decode_pair(&root, &state.schema) {
        Ok(p) => p,
        Err(msg) => return Response::json(400, error_body(&msg)),
    };
    let probability = state.model.predict_proba(&state.schema, &pair);
    Response::json(
        200,
        codec::encode_prediction(probability, state.predict_threshold).to_json(),
    )
}
