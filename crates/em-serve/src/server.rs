//! The HTTP server: accept loop, worker pool, routing, and shutdown.
//!
//! One listener thread accepts connections and pushes them onto a
//! [`BoundedQueue`]; `em_par::scoped_workers` runs the worker pool that
//! drains it. When the queue is full the accept thread answers 503
//! directly instead of queueing unbounded. `POST /shutdown` flips an
//! atomic flag and pokes the listener with a loopback connection so
//! `accept` wakes up; closing the queue then lets every in-flight request
//! finish before `run` returns.

use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use em_entity::{MatchModel, Schema};
use em_obs::Tracer;
use em_par::ParallelismConfig;

use crate::cache::ShardedCache;
use crate::codec::{self, ExplainOptions};
use crate::http::{read_request, HttpError, Request, Response};
use crate::json::Value;
use crate::metrics::{Endpoint, Metrics};
use crate::pool::{BoundedQueue, PushError};

/// How long a worker waits for a slow client before giving up on it.
const SOCKET_TIMEOUT: Duration = Duration::from_secs(30);

/// Server tunables.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker-pool sizing; `worker_count()` resolves `threads: 0` to the
    /// core count.
    pub parallelism: ParallelismConfig,
    /// Accepted-but-unserved connections held before shedding with 503.
    pub queue_depth: usize,
    /// Explanation-cache capacity (entries).
    pub cache_capacity: usize,
    /// Explanation-cache shard count.
    pub cache_shards: usize,
    /// Default explainer options, overridable per request via `"config"`.
    pub defaults: ExplainOptions,
    /// Decision threshold for `POST /predict`.
    pub predict_threshold: f64,
    /// An `/explain` request slower than this (wall-clock, milliseconds)
    /// is logged to stderr with its stage breakdown and counted in
    /// `em_serve_slow_requests_total`. `None` disables slow-request
    /// logging entirely.
    pub slow_request_ms: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            parallelism: ParallelismConfig::auto(),
            queue_depth: 64,
            cache_capacity: 1024,
            cache_shards: 8,
            defaults: ExplainOptions::default(),
            predict_threshold: 0.5,
            slow_request_ms: Some(1_000),
        }
    }
}

/// Everything the request handlers share.
struct AppState {
    schema: Schema,
    model: Box<dyn MatchModel + Send + Sync>,
    cache: ShardedCache,
    metrics: Metrics,
    defaults: ExplainOptions,
    predict_threshold: f64,
    slow_request_ms: Option<u64>,
    shutdown: AtomicBool,
    addr: SocketAddr,
}

/// A bound explanation server. [`Server::run`] blocks until shutdown;
/// [`Server::spawn`] runs it on a background thread for tests.
pub struct Server {
    listener: TcpListener,
    workers: usize,
    queue_depth: usize,
    state: AppState,
}

impl std::fmt::Debug for Server {
    // Manual impl: `AppState` holds a `Box<dyn MatchModel>`, which cannot
    // be printed; the bind address and sizing are what a log line needs.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.state.addr)
            .field("workers", &self.workers)
            .field("queue_depth", &self.queue_depth)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Binds the listener and assembles the server state. Bind to port 0
    /// for an ephemeral port (tests).
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        schema: Schema,
        model: Box<dyn MatchModel + Send + Sync>,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            listener,
            workers: config.parallelism.worker_count(),
            queue_depth: config.queue_depth,
            state: AppState {
                schema,
                model,
                cache: ShardedCache::new(config.cache_capacity, config.cache_shards),
                metrics: Metrics::new(),
                defaults: config.defaults,
                predict_threshold: config.predict_threshold,
                slow_request_ms: config.slow_request_ms,
                shutdown: AtomicBool::new(false),
                addr,
            },
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Serves until a `POST /shutdown` arrives, then drains in-flight
    /// requests and returns.
    pub fn run(self) {
        let state = &self.state;
        let queue: BoundedQueue<TcpStream> = BoundedQueue::new(self.queue_depth);
        let queue = &queue;
        em_par::scoped_workers(
            self.workers,
            |_worker| {
                while let Some(stream) = queue.pop() {
                    handle_connection(state, stream);
                }
            },
            || {
                for incoming in self.listener.incoming() {
                    if state.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let stream = match incoming {
                        Ok(s) => s,
                        Err(_) => continue,
                    };
                    if let Err(PushError::Full(stream) | PushError::Closed(stream)) =
                        queue.push(stream)
                    {
                        // Shed load in the accept thread; never block on a
                        // full pool.
                        let resp = Response::json(503, error_body("server overloaded"));
                        let _ = resp.write_to(&stream);
                        state.metrics.record(Endpoint::Other, 0, true);
                    }
                }
                queue.close();
            },
        );
    }

    /// Runs the server on a background thread, returning a handle with the
    /// bound address.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.local_addr();
        let thread = std::thread::spawn(move || self.run());
        ServerHandle { addr, thread }
    }
}

/// Handle to a [`Server::spawn`]ed server.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    thread: std::thread::JoinHandle<()>,
}

impl ServerHandle {
    /// The server's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the server to finish (after a `/shutdown` request).
    pub fn join(self) {
        // em-lint: allow(panic-in-request-path) -- shutdown path; propagating a worker panic is the point
        self.thread.join().expect("server thread panicked");
    }
}

fn error_body(message: &str) -> String {
    Value::object(vec![("error", Value::string(message))]).to_json()
}

/// Reads, routes, answers, and records one connection.
fn handle_connection(state: &AppState, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(SOCKET_TIMEOUT));
    let _ = stream.set_write_timeout(Some(SOCKET_TIMEOUT));
    let start = Instant::now();
    let (endpoint, response, is_shutdown) = match read_request(&stream) {
        Ok(request) => route(state, &request),
        // The peer connected and closed without sending a byte (port
        // probe, health checker). Nothing was asked, so nothing is
        // answered and no counter is bumped.
        Err(HttpError::Closed) => return,
        Err(HttpError::BodyTooLarge) => (
            Endpoint::Other,
            Response::json(413, error_body("request body too large")),
            false,
        ),
        Err(err) => (
            Endpoint::Other,
            Response::json(400, error_body(&err.to_string())),
            false,
        ),
    };
    let latency_us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
    state
        .metrics
        .record(endpoint, latency_us, response.status >= 400);
    let _ = response.write_to(&stream);
    drop(stream);
    if is_shutdown {
        state.shutdown.store(true, Ordering::SeqCst);
        // Wake the accept loop so it observes the flag; the dummy
        // connection is dropped unanswered.
        let _ = TcpStream::connect(state.addr);
    }
}

/// Maps a request to (endpoint, response, initiate-shutdown).
fn route(state: &AppState, request: &Request) -> (Endpoint, Response, bool) {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/explain") => (Endpoint::Explain, handle_explain(state, request), false),
        ("POST", "/predict") => (Endpoint::Predict, handle_predict(state, request), false),
        ("GET", "/healthz") => (
            Endpoint::Healthz,
            Response::json(
                200,
                Value::object(vec![("status", Value::string("ok"))]).to_json(),
            ),
            false,
        ),
        ("GET", "/metrics") => (
            Endpoint::Metrics,
            Response::text(
                200,
                state.metrics.render(state.cache.stats(), state.cache.len()),
            ),
            false,
        ),
        ("POST", "/shutdown") => (
            Endpoint::Shutdown,
            Response::json(
                200,
                Value::object(vec![("shutting_down", true.into())]).to_json(),
            ),
            true,
        ),
        (_, "/explain" | "/predict" | "/shutdown") => (
            Endpoint::Other,
            Response::json(405, error_body("use POST")),
            false,
        ),
        (_, "/healthz" | "/metrics") => (
            Endpoint::Other,
            Response::json(405, error_body("use GET")),
            false,
        ),
        _ => (
            Endpoint::Other,
            Response::json(404, error_body("no such endpoint")),
            false,
        ),
    }
}

fn handle_explain(state: &AppState, request: &Request) -> Response {
    let start = Instant::now(); // em-lint: allow(nondet-taint) -- latency for the X-Compute-Micros header and metrics only; never touches explanation bytes
    let decoded = match codec::decode_explain_request(&request.body, &state.schema, &state.defaults)
    {
        Ok(d) => d,
        Err(msg) => return Response::json(400, error_body(&msg)),
    };
    let key = codec::cache_key(&state.schema, &decoded);
    let trace = em_obs::Collector::new();
    let (body, cache_state) = match state.cache.get(&key) {
        // The cached body is bit-identical to a fresh computation (the
        // explanation is a deterministic function of the key), so only the
        // X-Cache header distinguishes this path.
        Some(body) => {
            trace.add(em_obs::Counter::CacheHits, 1);
            (body, "hit")
        }
        None => {
            trace.add(em_obs::Counter::CacheMisses, 1);
            let body =
                codec::run_explain_traced(&state.model, &state.schema, &decoded, &trace).to_json();
            state.cache.insert(key, body.clone());
            (body, "miss")
        }
    };
    state.metrics.record_explain_stages(&trace);
    let total_us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
    let timing = timing_header(total_us, &trace);
    if state
        .slow_request_ms
        .is_some_and(|ms| total_us > ms.saturating_mul(1_000))
    {
        state.metrics.record_slow();
        eprintln!("em-serve: slow request POST /explain ({timing})");
    }
    Response::json(200, body)
        .with_header("X-Cache", cache_state)
        .with_header("X-Timing", &timing)
}

/// Formats the `X-Timing` header: total handler wall-clock plus one
/// `stage=<n>us` entry for every pipeline stage the request entered (a
/// cache hit therefore reports only `total`).
fn timing_header(total_us: u64, trace: &em_obs::Collector) -> String {
    use std::fmt::Write as _;
    let mut out = format!("total={total_us}us");
    for stage in em_obs::Stage::all() {
        if trace.stage_entries(stage) == 0 {
            continue;
        }
        let _ = write!(
            out,
            "; {}={}us",
            stage.label(),
            trace.stage_nanos(stage) / 1_000
        );
    }
    out
}

fn handle_predict(state: &AppState, request: &Request) -> Response {
    let root = match Value::parse(&request.body) {
        Ok(v) => v,
        Err(e) => return Response::json(400, error_body(&e.to_string())),
    };
    let pair = match codec::decode_pair(&root, &state.schema) {
        Ok(p) => p,
        Err(msg) => return Response::json(400, error_body(&msg)),
    };
    let probability = state.model.predict_proba(&state.schema, &pair);
    Response::json(
        200,
        codec::encode_prediction(probability, state.predict_threshold).to_json(),
    )
}
