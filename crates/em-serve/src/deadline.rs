//! Per-connection deadlines for the request lifecycle.
//!
//! A per-*read* socket timeout does not bound a connection: a slowloris
//! client dripping one byte just inside the timeout holds a worker
//! forever. [`Deadline`] fixes the total budget at connection start;
//! [`DeadlineStream`] re-arms the socket timeout to the *remaining*
//! budget before every read and write, so total header+body time and
//! total response-write time are bounded no matter how the client
//! paces itself. The deadline machinery only decides *when to give up
//! on a socket* — it never influences explanation bytes, seeds, or
//! orderings, which is why its clock reads are declared
//! `sanitize(nondet-taint)` barriers (DESIGN.md §14).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// The smallest timeout ever handed to the kernel. A remaining budget in
/// the sub-millisecond range could truncate to a zero `timeval`, which
/// `setsockopt` reads as "block forever" — the exact failure mode this
/// module exists to prevent.
const MIN_SOCKET_TIMEOUT: Duration = Duration::from_millis(1);

/// A fixed total time budget counted from a start instant.
///
/// Stored as `(started, budget)` rather than a precomputed expiry so the
/// arithmetic is saturating end to end: no `Instant` addition can
/// overflow, and a clock that stands still simply never expires the
/// deadline early.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    started: Instant,
    budget: Duration,
}

impl Deadline {
    /// A deadline expiring `budget` from now.
    // em-lint: sanitize(nondet-taint) -- lifecycle clock: the deadline only bounds socket I/O (when to give up on a peer); it never feeds seeds, orderings, or response bytes (DESIGN.md §14)
    pub fn starting_now(budget: Duration) -> Deadline {
        Deadline {
            started: Instant::now(),
            budget,
        }
    }

    /// A deadline counted from an explicit start instant (queue stamps,
    /// tests).
    pub fn starting_at(started: Instant, budget: Duration) -> Deadline {
        Deadline { started, budget }
    }

    /// The total budget this deadline was created with.
    pub fn budget(&self) -> Duration {
        self.budget
    }

    /// Remaining budget as seen from `now`: `None` exactly when the
    /// deadline has expired (elapsed ≥ budget). Pure — this is the
    /// deadline math, separated from the clock so the boundary cases are
    /// unit-testable.
    pub fn remaining_at(&self, now: Instant) -> Option<Duration> {
        let elapsed = now.saturating_duration_since(self.started);
        self.budget
            .checked_sub(elapsed)
            .filter(|left| !left.is_zero())
    }

    /// Remaining budget as of this instant.
    // em-lint: sanitize(nondet-taint) -- lifecycle clock: remaining budget arms socket timeouts only, never seeds, orderings, or response bytes (DESIGN.md §14)
    pub fn remaining(&self) -> Option<Duration> {
        self.remaining_at(Instant::now())
    }

    /// Whether the budget is spent.
    pub fn expired(&self) -> bool {
        self.remaining().is_none()
    }
}

/// The slice of socket behaviour the deadline machinery needs, split out
/// as a trait so tests can drive [`DeadlineStream`] with a scripted fake
/// instead of a kernel socket.
pub trait SocketTimeouts {
    /// Arms the read timeout for the next read call.
    fn set_read_timeout(&self, timeout: Duration) -> std::io::Result<()>;
    /// Arms the write timeout for the next write call.
    fn set_write_timeout(&self, timeout: Duration) -> std::io::Result<()>;
}

impl SocketTimeouts for &TcpStream {
    fn set_read_timeout(&self, timeout: Duration) -> std::io::Result<()> {
        TcpStream::set_read_timeout(self, Some(timeout))
    }

    fn set_write_timeout(&self, timeout: Duration) -> std::io::Result<()> {
        TcpStream::set_write_timeout(self, Some(timeout))
    }
}

/// Whether an I/O error is a timeout, under either spelling: Unix
/// surfaces an expired `SO_RCVTIMEO`/`SO_SNDTIMEO` as `WouldBlock`,
/// Windows as `TimedOut`.
pub fn is_timeout(error: &std::io::Error) -> bool {
    matches!(
        error.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

fn expired_error() -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::TimedOut, "connection deadline expired")
}

/// An I/O adaptor that charges every read and write against one
/// [`Deadline`]: before each operation the socket timeout is re-armed to
/// the remaining budget (never below [`MIN_SOCKET_TIMEOUT`]), and an
/// already-expired deadline fails immediately with
/// [`std::io::ErrorKind::TimedOut`] without touching the socket.
#[derive(Debug)]
pub struct DeadlineStream<S> {
    inner: S,
    deadline: Deadline,
    bytes_read: u64,
}

impl<S> DeadlineStream<S> {
    /// Wraps `inner` (for a `TcpStream`, pass `&stream`) under `deadline`.
    pub fn new(inner: S, deadline: Deadline) -> DeadlineStream<S> {
        DeadlineStream {
            inner,
            deadline,
            bytes_read: 0,
        }
    }

    /// The deadline every operation is charged against.
    pub fn deadline(&self) -> Deadline {
        self.deadline
    }

    /// Total bytes successfully read so far — how the server tells a
    /// connect-and-hold peer (deadline expired at zero bytes) from a
    /// slowloris dripper (expired mid-header).
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }
}

impl<S: Read + SocketTimeouts> Read for DeadlineStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let Some(left) = self.deadline.remaining() else {
            return Err(expired_error());
        };
        self.inner.set_read_timeout(left.max(MIN_SOCKET_TIMEOUT))?;
        let n = self.inner.read(buf)?;
        self.bytes_read += n as u64;
        Ok(n)
    }
}

impl<S: Write + SocketTimeouts> Write for DeadlineStream<S> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let Some(left) = self.deadline.remaining() else {
            return Err(expired_error());
        };
        self.inner.set_write_timeout(left.max(MIN_SOCKET_TIMEOUT))?;
        self.inner.write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{read_request, HttpError, ReadPhase, MAX_BODY_BYTES};
    use std::sync::Mutex;

    #[test]
    fn remaining_at_the_boundaries() {
        let start = Instant::now();
        let d = Deadline::starting_at(start, Duration::from_millis(100));
        // Fresh: the whole budget is left.
        assert_eq!(d.remaining_at(start), Some(Duration::from_millis(100)));
        // One tick before expiry: the last nanosecond is still usable.
        assert_eq!(
            d.remaining_at(start + Duration::from_nanos(99_999_999)),
            Some(Duration::from_nanos(1))
        );
        // Exactly at expiry: spent, not a zero-length grant (a zero
        // socket timeout would mean "block forever").
        assert_eq!(d.remaining_at(start + Duration::from_millis(100)), None);
        // Past expiry: stays spent.
        assert_eq!(d.remaining_at(start + Duration::from_secs(5)), None);
    }

    #[test]
    fn remaining_saturates_for_a_clock_before_the_start() {
        // `saturating_duration_since` guards against `now < started`
        // (possible when a deadline is stamped on another thread): the
        // budget is simply still whole.
        let start = Instant::now();
        let d = Deadline::starting_at(start + Duration::from_secs(10), Duration::from_millis(50));
        assert_eq!(d.remaining_at(start), Some(Duration::from_millis(50)));
    }

    #[test]
    fn zero_budget_is_born_expired() {
        let d = Deadline::starting_now(Duration::ZERO);
        assert!(d.expired());
        assert_eq!(d.remaining(), None);
    }

    /// A scripted peer: each `read` yields one byte of `payload` after
    /// `delay_per_byte`, honouring whatever read timeout the
    /// `DeadlineStream` armed — exactly like a kernel socket facing a
    /// dripping client.
    struct DripPeer {
        state: Mutex<DripState>,
        delay_per_byte: Duration,
    }

    struct DripState {
        payload: Vec<u8>,
        cursor: usize,
        read_timeout: Duration,
    }

    impl DripPeer {
        fn new(payload: &[u8], delay_per_byte: Duration) -> DripPeer {
            DripPeer {
                state: Mutex::new(DripState {
                    payload: payload.to_vec(),
                    cursor: 0,
                    read_timeout: Duration::from_secs(3600),
                }),
                delay_per_byte,
            }
        }
    }

    impl SocketTimeouts for &DripPeer {
        fn set_read_timeout(&self, timeout: Duration) -> std::io::Result<()> {
            match self.state.lock() {
                Ok(mut s) => {
                    s.read_timeout = timeout;
                    Ok(())
                }
                Err(_) => Err(std::io::Error::other("poisoned")),
            }
        }

        fn set_write_timeout(&self, _timeout: Duration) -> std::io::Result<()> {
            Ok(())
        }
    }

    impl Read for &DripPeer {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let (byte, timeout) = {
                let mut s = self
                    .state
                    .lock()
                    .map_err(|_| std::io::Error::other("poisoned"))?;
                let timeout = s.read_timeout;
                if s.cursor >= s.payload.len() {
                    return Ok(0); // EOF once the script is exhausted
                }
                let b = s.payload[s.cursor];
                s.cursor += 1;
                (b, timeout)
            };
            if self.delay_per_byte >= timeout {
                // The armed timeout fires before the next byte lands.
                std::thread::sleep(timeout);
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WouldBlock,
                    "read timed out",
                ));
            }
            std::thread::sleep(self.delay_per_byte);
            match buf.first_mut() {
                Some(slot) => {
                    *slot = byte;
                    Ok(1)
                }
                None => Ok(0),
            }
        }
    }

    #[test]
    fn fast_peer_is_untouched_by_the_deadline() {
        let payload = b"POST /explain HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi";
        let peer = DripPeer::new(payload, Duration::ZERO);
        let mut stream = DeadlineStream::new(&peer, Deadline::starting_now(Duration::from_secs(5)));
        let request = read_request(&mut stream).expect("fast request parses");
        assert_eq!(request.method, "POST");
        assert_eq!(request.body, "hi");
        assert_eq!(stream.bytes_read(), payload.len() as u64);
    }

    #[test]
    fn slow_header_drip_times_out_in_the_header_phase() {
        // 20 ms/byte against a 100 ms total budget: the per-byte pace
        // would satisfy any per-read timeout, only a total budget stops it.
        let peer = DripPeer::new(b"POST /explain HTTP/1.1\r\n", Duration::from_millis(20));
        let mut stream =
            DeadlineStream::new(&peer, Deadline::starting_now(Duration::from_millis(100)));
        let err = read_request(&mut stream).expect_err("drip must time out");
        assert_eq!(err, HttpError::Timeout(ReadPhase::Header));
        assert!(stream.bytes_read() > 0, "some header bytes were read");
    }

    #[test]
    fn slow_body_drip_times_out_in_the_body_phase() {
        // Headers arrive instantly; the declared 64-byte body drips too
        // slowly for the remaining budget.
        let head = b"POST /explain HTTP/1.1\r\nContent-Length: 64\r\n\r\n";
        let mut payload = head.to_vec();
        payload.extend(std::iter::repeat_n(b'x', 64));
        let peer = DripPeer::new(&payload, Duration::from_millis(5));
        let budget = Duration::from_millis(head.len() as u64 * 5 + 60);
        let mut stream = DeadlineStream::new(&peer, Deadline::starting_now(budget));
        let err = read_request(&mut stream).expect_err("body drip must time out");
        assert_eq!(err, HttpError::Timeout(ReadPhase::Body));
    }

    #[test]
    fn expired_deadline_fails_without_touching_the_socket() {
        let peer = DripPeer::new(b"GET /healthz HTTP/1.1\r\n\r\n", Duration::ZERO);
        let mut stream = DeadlineStream::new(&peer, Deadline::starting_now(Duration::ZERO));
        let err = read_request(&mut stream).expect_err("expired deadline");
        assert_eq!(err, HttpError::Timeout(ReadPhase::Header));
        assert_eq!(stream.bytes_read(), 0, "no read was attempted");
    }

    #[test]
    fn header_cap_still_fires_under_an_active_deadline() {
        // A fast client blasting an endless request line hits the 16 KiB
        // header cap (Malformed), not the deadline — the caps and the
        // deadline compose, whichever bound is crossed first wins.
        let huge = vec![b'a'; 64 << 10];
        let peer = DripPeer::new(&huge, Duration::ZERO);
        let mut stream =
            DeadlineStream::new(&peer, Deadline::starting_now(Duration::from_secs(30)));
        assert!(matches!(
            read_request(&mut stream),
            Err(HttpError::Malformed(m)) if m.contains("request line")
        ));
    }

    #[test]
    fn body_cap_rejects_before_the_deadline_matters() {
        // An over-cap Content-Length is refused from the headers alone —
        // no budget is spent reading a body that would be discarded.
        let raw = format!(
            "POST /explain HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        let peer = DripPeer::new(raw.as_bytes(), Duration::ZERO);
        let mut stream =
            DeadlineStream::new(&peer, Deadline::starting_now(Duration::from_secs(30)));
        assert!(matches!(
            read_request(&mut stream),
            Err(HttpError::BodyTooLarge)
        ));
    }

    #[test]
    fn timeout_error_kinds_are_recognised() {
        assert!(is_timeout(&std::io::Error::new(
            std::io::ErrorKind::WouldBlock,
            "x"
        )));
        assert!(is_timeout(&std::io::Error::new(
            std::io::ErrorKind::TimedOut,
            "x"
        )));
        assert!(!is_timeout(&std::io::Error::other("x")));
    }
}
