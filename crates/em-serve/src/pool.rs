//! The bounded connection queue between the accept loop and the workers.
//!
//! The worker threads themselves come from `em_par::scoped_workers` — the
//! same scoped-thread primitive `par_map` forks on — so the whole server
//! (accept loop + workers) joins cleanly when the queue closes. This
//! module provides the channel in the middle: a mutex/condvar MPMC queue
//! with a hard capacity. When the queue is full the accept loop sheds load
//! immediately (503) instead of letting connections pile up unbounded.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded, closeable MPMC queue.
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> std::fmt::Debug for BoundedQueue<T> {
    // Manual impl: printing the queued items would both lock the mutex and
    // demand `T: Debug`; the capacity is the only stable fact.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoundedQueue")
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

/// Why a [`BoundedQueue::push`] was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; the caller should shed the item.
    Full(T),
    /// The queue was closed; no more items are accepted.
    Closed(T),
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues an item, or returns it if the queue is full/closed.
    pub fn push(&self, item: T) -> Result<(), PushError<T>> {
        let mut state = self.state.lock().expect("queue poisoned"); // em-lint: allow(panic-in-request-path) -- poisoning means a worker already panicked; propagating is the correct failure mode
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        state.items.push_back(item);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues the next item, blocking while the queue is open and empty.
    /// Returns `None` only when the queue is closed **and** drained — so
    /// closing lets in-flight work finish (graceful shutdown).
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("queue poisoned");
        }
    }

    /// Closes the queue and wakes every blocked consumer.
    pub fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.not_empty.notify_all();
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue poisoned").items.len() // em-lint: allow(panic-in-request-path) -- poisoning means a worker already panicked; propagating is the correct failure mode
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn push_pop_roundtrip() {
        let q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn full_queue_sheds() {
        let q = BoundedQueue::new(1);
        q.push(1).unwrap();
        assert_eq!(q.push(2), Err(PushError::Full(2)));
    }

    #[test]
    fn closed_queue_rejects_pushes_but_drains_pops() {
        let q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.close();
        assert_eq!(q.push(2), Err(PushError::Closed(2)));
        assert_eq!(q.pop(), Some(1)); // drains existing work
        assert_eq!(q.pop(), None); // then reports closed
    }

    #[test]
    fn consumers_wake_on_close_and_on_push() {
        let q = BoundedQueue::new(16);
        let drained = AtomicUsize::new(0);
        em_par::scoped_workers(
            4,
            |_w| {
                while q.pop().is_some() {
                    drained.fetch_add(1, Ordering::Relaxed);
                }
            },
            || {
                for i in 0..100 {
                    // Capacity backpressure: retry until accepted.
                    let mut item = i;
                    loop {
                        match q.push(item) {
                            Ok(()) => break,
                            Err(PushError::Full(x)) => {
                                item = x;
                                std::thread::yield_now();
                            }
                            Err(PushError::Closed(_)) => unreachable!(),
                        }
                    }
                }
                q.close();
            },
        );
        assert_eq!(drained.load(Ordering::Relaxed), 100);
    }
}
