//! The bounded connection queue between the accept loop and the workers.
//!
//! The worker threads themselves come from `em_par::scoped_workers` — the
//! same scoped-thread primitive `par_map` forks on — so the whole server
//! (accept loop + workers) joins cleanly when the queue closes. This
//! module provides the channel in the middle: a mutex/condvar MPMC queue
//! with a hard capacity. When the queue is full the accept loop sheds load
//! immediately (503) instead of letting connections pile up unbounded.
//! Every entry is stamped with its enqueue instant ([`Enqueued`]) so
//! workers can discard connections that waited past the admission bound
//! (DESIGN.md §14).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// A queued item stamped with its enqueue instant. Workers use the age
/// for admission control: an entry that sat in the queue longer than the
/// configured bound belongs to a client that has almost certainly timed
/// out, and serving it would waste compute on an answer nobody reads.
#[derive(Debug)]
pub struct Enqueued<T> {
    /// The queued item.
    pub item: T,
    enqueued_at: Instant,
}

impl<T> Enqueued<T> {
    /// Stamps `item` with the current instant.
    // em-lint: sanitize(nondet-taint) -- admission-control clock: the enqueue stamp only decides whether a stale connection is discarded; it never feeds seeds, orderings, or response bytes (DESIGN.md §14)
    pub fn stamped_now(item: T) -> Enqueued<T> {
        Enqueued {
            item,
            enqueued_at: Instant::now(),
        }
    }

    /// Stamps `item` with an explicit instant (tests fabricate old
    /// entries with this).
    pub fn stamped_at(item: T, enqueued_at: Instant) -> Enqueued<T> {
        Enqueued { item, enqueued_at }
    }

    /// When the item entered the queue.
    pub fn enqueued_at(&self) -> Instant {
        self.enqueued_at
    }

    /// How long the item has been waiting, as of `now`.
    pub fn age_at(&self, now: Instant) -> Duration {
        now.saturating_duration_since(self.enqueued_at)
    }

    /// How long the item has been waiting.
    // em-lint: sanitize(nondet-taint) -- admission-control clock: queue age only decides whether a stale connection is discarded, never what is computed for it (DESIGN.md §14)
    pub fn age(&self) -> Duration {
        self.age_at(Instant::now())
    }
}

struct QueueState<T> {
    items: VecDeque<Enqueued<T>>,
    closed: bool,
}

/// A bounded, closeable MPMC queue.
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> std::fmt::Debug for BoundedQueue<T> {
    // Manual impl: printing the queued items would both lock the mutex and
    // demand `T: Debug`; the capacity is the only stable fact.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoundedQueue")
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

/// Why a [`BoundedQueue::push`] was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; the caller should shed the item.
    Full(T),
    /// The queue was closed; no more items are accepted.
    Closed(T),
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues an item stamped with the current instant, or returns it
    /// if the queue is full/closed.
    pub fn push(&self, item: T) -> Result<(), PushError<T>> {
        self.push_stamped(Enqueued::stamped_now(item))
    }

    /// Enqueues a pre-stamped item (tests fabricate old entries this
    /// way), or returns the inner item if the queue is full/closed.
    pub fn push_stamped(&self, entry: Enqueued<T>) -> Result<(), PushError<T>> {
        let mut state = self.state.lock().expect("queue poisoned"); // em-lint: allow(panic-in-request-path) -- poisoning means a worker already panicked; propagating is the correct failure mode
        if state.closed {
            return Err(PushError::Closed(entry.item));
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full(entry.item));
        }
        state.items.push_back(entry);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues the next item (with its enqueue stamp), blocking while
    /// the queue is open and empty. Returns `None` only when the queue is
    /// closed **and** drained — so closing lets in-flight work finish
    /// (graceful shutdown).
    pub fn pop(&self) -> Option<Enqueued<T>> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("queue poisoned");
        }
    }

    /// Closes the queue and wakes every blocked consumer.
    pub fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.not_empty.notify_all();
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue poisoned").items.len() // em-lint: allow(panic-in-request-path) -- poisoning means a worker already panicked; propagating is the correct failure mode
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn push_pop_roundtrip() {
        let q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().map(|e| e.item), Some(1));
        assert_eq!(q.pop().map(|e| e.item), Some(2));
    }

    #[test]
    fn entries_carry_their_enqueue_stamp() {
        let q = BoundedQueue::new(4);
        let before = Instant::now();
        q.push(7).unwrap();
        let entry = q.pop().expect("one entry");
        assert_eq!(entry.item, 7);
        assert!(entry.enqueued_at() >= before);
        // Age is measured from the stamp: a fabricated old entry reports
        // its true wait, the boundary case (now == stamp) reports zero.
        let old = Enqueued::stamped_at(8, before - Duration::from_secs(60));
        assert!(old.age() >= Duration::from_secs(60));
        assert_eq!(old.age_at(before - Duration::from_secs(60)), Duration::ZERO);
        // A stamp in the future saturates to zero age, never panics.
        let future = Enqueued::stamped_at(9, before + Duration::from_secs(60));
        assert_eq!(future.age_at(before), Duration::ZERO);
    }

    #[test]
    fn full_queue_sheds() {
        let q = BoundedQueue::new(1);
        q.push(1).unwrap();
        assert_eq!(q.push(2), Err(PushError::Full(2)));
    }

    #[test]
    fn closed_queue_rejects_pushes_but_drains_pops() {
        let q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.close();
        assert_eq!(q.push(2), Err(PushError::Closed(2)));
        assert_eq!(q.pop().map(|e| e.item), Some(1)); // drains existing work
        assert!(q.pop().is_none()); // then reports closed
    }

    #[test]
    fn consumers_wake_on_close_and_on_push() {
        let q = BoundedQueue::new(16);
        let drained = AtomicUsize::new(0);
        em_par::scoped_workers(
            4,
            |_w| {
                while q.pop().is_some() {
                    drained.fetch_add(1, Ordering::Relaxed);
                }
            },
            || {
                for i in 0..100 {
                    // Capacity backpressure: retry until accepted.
                    let mut item = i;
                    loop {
                        match q.push(item) {
                            Ok(()) => break,
                            Err(PushError::Full(x)) => {
                                item = x;
                                std::thread::yield_now();
                            }
                            Err(PushError::Closed(_)) => unreachable!(),
                        }
                    }
                }
                q.close();
            },
        );
        assert_eq!(drained.load(Ordering::Relaxed), 100);
    }
}
