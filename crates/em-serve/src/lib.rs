//! `em-serve` — an online explanation-serving subsystem.
//!
//! Turns the workspace's explainers into a network service: a
//! dependency-free HTTP/1.1 server on `std::net` exposing
//!
//! * `POST /explain` — record pair + explainer choice + config overrides →
//!   explanation JSON, answered from a sharded LRU cache when possible
//!   (`X-Cache: hit|miss`); cached and fresh responses are bit-identical
//!   because explanations are deterministic functions of
//!   `(pair, explainer, config, seed)`. Each response carries an
//!   `X-Timing` header with the request's per-stage breakdown (an
//!   `em-obs` trace; DESIGN.md §10), and requests slower than
//!   [`ServerConfig::slow_request_ms`] are logged to stderr;
//! * `POST /predict` — record pair → match probability + decision;
//! * `GET /healthz` — liveness;
//! * `GET /readyz` — readiness: `200` while accepting, `503` (with the
//!   current queue depth) once the node is draining;
//! * `GET /metrics` — Prometheus text: per-endpoint request counters and
//!   latency histograms, per-pipeline-stage latency histograms
//!   (`em_serve_stage_latency_us`), slow-request and cache counters;
//! * `POST /drain` — mark the node draining (readiness goes red, liveness
//!   stays green) so routers stop sending while in-flight work finishes;
//! * `POST /shutdown` — graceful stop (in-flight requests drain).
//!
//! Concurrency comes from a bounded accept/worker pool built on
//! `em_par::scoped_workers`, sized by [`em_par::ParallelismConfig`]. The
//! [`json`] module is a self-contained parser/writer, so the crate adds no
//! dependencies beyond the workspace.
//!
//! The request lifecycle is hardened against misbehaving clients
//! (DESIGN.md §14): each connection runs under a per-connection
//! [`Deadline`] bounding total read + write time regardless of how the
//! peer drips bytes, queued connections past an admission age bound are
//! discarded, overload shedding never blocks the accept loop, and every
//! rejection is attributed to a cause in
//! `em_serve_rejects_total{cause=...}`.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![deny(clippy::unwrap_used)]

pub mod cache;
pub mod client;
pub mod codec;
pub mod deadline;
pub mod http;
pub mod json;
pub mod metrics;
pub mod pool;
pub mod server;

pub use cache::{CacheStats, ShardedCache};
pub use client::{ClientError, ClientResponse};
pub use codec::{ExplainOptions, ExplainRequest, ExplainerKind};
pub use deadline::{Deadline, DeadlineStream};
pub use json::{JsonError, Value};
pub use metrics::{Endpoint, Metrics, RejectCause};
pub use server::{Server, ServerConfig, ServerHandle};
