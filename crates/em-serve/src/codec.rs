//! Re-export of the shared explanation codec.
//!
//! Typed request decode, the canonical cache key, and the explanation
//! encoder originally lived in this module; they were hoisted into
//! `em-codec` (as `em_codec::explain`) together with the JSON layer so
//! `em-batch` records and served responses flow through one encoder and
//! stay bit-identical for the same `(pair, explainer, config, seed)`.
//! This module re-exports the codec unchanged, so every
//! `em_serve::codec::*` path keeps working.

pub use em_codec::explain::*;
