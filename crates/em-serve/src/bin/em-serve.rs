//! The `em-serve` binary: trains (or loads) a logistic matcher on a
//! benchmark dataset and serves explanations over HTTP.
//!
//! ```text
//! em-serve --dataset S-FZ --scale 0.25 --port 8080 --threads 0
//! curl -s localhost:8080/healthz
//! ```

use std::process::ExitCode;

use em_datagen::{DatasetId, MagellanBenchmark};
use em_matchers::{
    load_logistic_file, save_logistic_file, FeatureExtractor, LogisticMatcher, MatcherConfig,
};
use em_par::ParallelismConfig;
use em_serve::{ExplainOptions, Server, ServerConfig};

const USAGE: &str = "\
em-serve — explanation-serving HTTP API

USAGE:
    em-serve [FLAGS]

FLAGS:
    --host HOST          bind address           [default: 127.0.0.1]
    --port PORT          bind port              [default: 8080]
    --threads N          worker threads, 0=auto [default: 0]
    --queue-depth N      pending connections    [default: 64]
    --cache-size N       cached explanations    [default: 1024]
    --cache-shards N     cache shards           [default: 8]
    --dataset NAME       Table 1 dataset (e.g. S-FZ, T-AB) [default: S-FZ]
    --scale F            dataset size multiplier in (0,1]  [default: 0.25]
    --samples N          default perturbation samples      [default: 500]
    --seed N             default explanation seed          [default: 0]
    --slow-ms N          slow-request log threshold (ms), 0 disables [default: 1000]
    --request-timeout-ms N  total per-connection read+write budget (ms) [default: 30000]
    --queue-age-ms N     discard connections queued longer than this (ms) [default: 10000]
    --model PATH         load logistic coefficients instead of training
    --save-model PATH    write trained coefficients after startup training
    --help               print this help
";

struct Args {
    host: String,
    port: u16,
    threads: usize,
    queue_depth: usize,
    cache_size: usize,
    cache_shards: usize,
    dataset: DatasetId,
    scale: f64,
    samples: usize,
    seed: u64,
    slow_ms: u64,
    request_timeout_ms: u64,
    queue_age_ms: u64,
    model: Option<String>,
    save_model: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            host: "127.0.0.1".to_string(),
            port: 8080,
            threads: 0,
            queue_depth: 64,
            cache_size: 1024,
            cache_shards: 8,
            dataset: DatasetId::SFz,
            scale: 0.25,
            samples: 500,
            seed: 0,
            slow_ms: 1_000,
            request_timeout_ms: 30_000,
            queue_age_ms: 10_000,
            model: None,
            save_model: None,
        }
    }
}

fn parse_dataset(name: &str) -> Result<DatasetId, String> {
    let wanted = name.to_ascii_uppercase();
    DatasetId::all()
        .into_iter()
        .find(|id| id.short_name() == wanted)
        .ok_or_else(|| {
            let names: Vec<&str> = DatasetId::all().iter().map(|id| id.short_name()).collect();
            format!(
                "unknown dataset {name:?}; expected one of {}",
                names.join(", ")
            )
        })
}

fn parse_args(argv: &[String]) -> Result<Option<Args>, String> {
    let mut args = Args::default();
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            return Ok(None);
        }
        let value = it
            .next()
            .ok_or_else(|| format!("{flag} requires a value"))?;
        let bad = |what: &str| format!("{flag}: {what} (got {value:?})");
        match flag.as_str() {
            "--host" => args.host = value.clone(),
            "--port" => args.port = value.parse().map_err(|_| bad("expected a port"))?,
            "--threads" => args.threads = value.parse().map_err(|_| bad("expected an integer"))?,
            "--queue-depth" => {
                args.queue_depth = value.parse().map_err(|_| bad("expected an integer"))?
            }
            "--cache-size" => {
                args.cache_size = value.parse().map_err(|_| bad("expected an integer"))?
            }
            "--cache-shards" => {
                args.cache_shards = value.parse().map_err(|_| bad("expected an integer"))?
            }
            "--dataset" => args.dataset = parse_dataset(value)?,
            "--scale" => {
                args.scale = value
                    .parse()
                    .ok()
                    .filter(|s| *s > 0.0 && *s <= 1.0)
                    .ok_or_else(|| bad("expected a number in (0, 1]"))?
            }
            "--samples" => {
                args.samples = value
                    .parse()
                    .ok()
                    .filter(|n| *n > 0)
                    .ok_or_else(|| bad("expected a positive integer"))?
            }
            "--seed" => args.seed = value.parse().map_err(|_| bad("expected an integer"))?,
            "--slow-ms" => args.slow_ms = value.parse().map_err(|_| bad("expected an integer"))?,
            "--request-timeout-ms" => {
                args.request_timeout_ms = value
                    .parse()
                    .ok()
                    .filter(|n| *n > 0)
                    .ok_or_else(|| bad("expected a positive integer"))?
            }
            "--queue-age-ms" => {
                args.queue_age_ms = value
                    .parse()
                    .ok()
                    .filter(|n| *n > 0)
                    .ok_or_else(|| bad("expected a positive integer"))?
            }
            "--model" => args.model = Some(value.clone()),
            "--save-model" => args.save_model = Some(value.clone()),
            _ => return Err(format!("unknown flag {flag}")),
        }
    }
    Ok(Some(args))
}

fn run(args: Args) -> Result<(), String> {
    eprintln!(
        "em-serve: generating dataset {} (scale {})",
        args.dataset.short_name(),
        args.scale
    );
    let dataset = MagellanBenchmark::scaled(args.scale).generate(args.dataset);
    let schema = dataset.schema().clone();

    let matcher = match &args.model {
        Some(path) => {
            // The extractor's corpus statistics are refit from the dataset;
            // only the logistic coefficients come from the file.
            let model = load_logistic_file(std::path::Path::new(path), &schema)
                .map_err(|e| format!("loading {path}: {e}"))?;
            eprintln!("em-serve: loaded model from {path}");
            LogisticMatcher::from_parts(FeatureExtractor::fit(&dataset), model)
        }
        None => {
            eprintln!("em-serve: training logistic matcher");
            LogisticMatcher::train(&dataset, &MatcherConfig::default())
        }
    };
    if let Some(path) = &args.save_model {
        save_logistic_file(std::path::Path::new(path), matcher.model(), &schema)
            .map_err(|e| format!("saving {path}: {e}"))?;
        eprintln!("em-serve: saved model to {path}");
    }

    let config = ServerConfig {
        parallelism: ParallelismConfig::with_threads(args.threads),
        queue_depth: args.queue_depth,
        cache_capacity: args.cache_size,
        cache_shards: args.cache_shards,
        defaults: ExplainOptions {
            n_samples: args.samples,
            seed: args.seed,
            ..Default::default()
        },
        slow_request_ms: (args.slow_ms > 0).then_some(args.slow_ms),
        request_timeout: std::time::Duration::from_millis(args.request_timeout_ms),
        max_queue_age: std::time::Duration::from_millis(args.queue_age_ms),
        ..Default::default()
    };
    let workers = config.parallelism.worker_count();
    let server = Server::bind(
        (args.host.as_str(), args.port),
        schema,
        Box::new(matcher),
        config,
    )
    .map_err(|e| format!("binding {}:{}: {e}", args.host, args.port))?;
    eprintln!(
        "em-serve: listening on http://{} ({} workers; POST /explain, /predict; GET /healthz, /metrics)",
        server.local_addr(),
        workers
    );
    server.run();
    eprintln!("em-serve: shut down cleanly");
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&argv) {
        Ok(None) => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Ok(Some(args)) => match run(args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("em-serve: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("em-serve: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
