//! Re-export of the shared JSON layer.
//!
//! The [`Value`] tree, parser, and shortest-roundtrip writer originally
//! lived in this module; they were hoisted into the `em-codec` crate so
//! the offline batch pipeline (`em-batch`) can emit bytes bit-identical
//! to served responses without depending on the server crate. This module
//! re-exports the layer unchanged, so every `em_serve::json::*` path —
//! and the serving guarantee that cached and fresh responses are
//! bit-identical — is exactly as before.

pub use em_codec::json::*;
