//! A sharded LRU cache for rendered explanation responses.
//!
//! Explanations are deterministic functions of `(pair, explainer, config,
//! seed)` — see `DESIGN.md` §7 — so the service can cache the **encoded
//! response body** and replay it byte-for-byte: a cached response is
//! bit-identical to a freshly computed one by construction.
//!
//! Keys are the canonical JSON of the resolved request (stable across
//! processes); an FNV-1a hash of the key picks the shard, and the full key
//! string is kept in the map so hash collisions can never alias two
//! different requests. Each shard is an independent mutex, so concurrent
//! workers rarely contend. Recency is a monotonic tick per entry; eviction
//! scans the (small) shard for the minimum tick — O(shard size), which at
//! serving-cache sizes is cheaper than maintaining an intrusive list.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// FNV-1a 64-bit: a stable, dependency-free string hash.
///
/// Delegates to `em-codec`'s hasher so the shard pick here and the ring
/// placement in `em-route` agree on every bit of the same canonical key.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    em_codec::hash::fnv1a64(bytes)
}

struct Entry {
    body: String,
    tick: u64,
}

/// Hit/miss counters, surfaced on `/metrics`.
#[derive(Debug, Default)]
pub struct CacheStats {
    /// Lookups that returned a cached body.
    pub hits: AtomicU64,
    /// Lookups that missed.
    pub misses: AtomicU64,
    /// Entries evicted to make room.
    pub evictions: AtomicU64,
}

/// The sharded LRU described in the module docs.
pub struct ShardedCache {
    shards: Vec<Mutex<HashMap<String, Entry>>>,
    capacity_per_shard: usize,
    tick: AtomicU64,
    stats: CacheStats,
}

impl std::fmt::Debug for ShardedCache {
    // Manual impl: printing the shards would lock every mutex (and Entry
    // bodies are whole JSON responses); shape + counters is enough.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCache")
            .field("shards", &self.shards.len())
            .field("capacity_per_shard", &self.capacity_per_shard)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl ShardedCache {
    /// A cache holding at most `capacity` entries across `shards` shards
    /// (both clamped to at least 1; per-shard capacity rounds up).
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let capacity_per_shard = capacity.max(1).div_ceil(shards);
        ShardedCache {
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            capacity_per_shard,
            tick: AtomicU64::new(0),
            stats: CacheStats::default(),
        }
    }

    fn shard(&self, key: &str) -> &Mutex<HashMap<String, Entry>> {
        let idx = (fnv1a(key.as_bytes()) % self.shards.len() as u64) as usize;
        &self.shards[idx] // em-lint: allow(panic-in-request-path) -- idx < shards.len() by the modulo above
    }

    /// Returns the cached body for `key`, refreshing its recency.
    pub fn get(&self, key: &str) -> Option<String> {
        let mut shard = self.shard(key).lock().expect("cache shard poisoned"); // em-lint: allow(panic-in-request-path) -- poisoning means a worker already panicked; propagating is the correct failure mode
        match shard.get_mut(key) {
            Some(entry) => {
                entry.tick = self.tick.fetch_add(1, Ordering::Relaxed);
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.body.clone())
            }
            None => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or refreshes) `key → body`, evicting the least recently
    /// used entry of the shard when it is full.
    pub fn insert(&self, key: String, body: String) {
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard(&key).lock().expect("cache shard poisoned"); // em-lint: allow(panic-in-request-path) -- poisoning means a worker already panicked; propagating is the correct failure mode
        if !shard.contains_key(&key) && shard.len() >= self.capacity_per_shard {
            if let Some(oldest) = shard
                .iter()
                .min_by_key(|(_, e)| e.tick)
                .map(|(k, _)| k.clone())
            {
                shard.remove(&oldest);
                self.stats.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.insert(key, Entry { body, tick });
    }

    /// Number of cached entries (sums shard sizes).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").len()) // em-lint: allow(panic-in-request-path) -- poisoning means a worker already panicked; propagating is the correct failure mode
            .sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The hit/miss/eviction counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable() {
        // Reference vectors for FNV-1a 64.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"hello"), 0xa430d84680aabd0b);
    }

    #[test]
    fn get_after_insert_hits() {
        let cache = ShardedCache::new(8, 2);
        assert_eq!(cache.get("k"), None);
        cache.insert("k".to_string(), "body".to_string());
        assert_eq!(cache.get("k").as_deref(), Some("body"));
        assert_eq!(cache.stats().hits.load(Ordering::Relaxed), 1);
        assert_eq!(cache.stats().misses.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn evicts_least_recently_used_within_a_shard() {
        // One shard so recency order is total.
        let cache = ShardedCache::new(2, 1);
        cache.insert("a".to_string(), "1".to_string());
        cache.insert("b".to_string(), "2".to_string());
        assert_eq!(cache.get("a").as_deref(), Some("1")); // refresh "a"
        cache.insert("c".to_string(), "3".to_string()); // evicts "b"
        assert_eq!(cache.get("b"), None);
        assert_eq!(cache.get("a").as_deref(), Some("1"));
        assert_eq!(cache.get("c").as_deref(), Some("3"));
        assert_eq!(cache.stats().evictions.load(Ordering::Relaxed), 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn reinserting_an_existing_key_does_not_evict() {
        let cache = ShardedCache::new(2, 1);
        cache.insert("a".to_string(), "1".to_string());
        cache.insert("b".to_string(), "2".to_string());
        cache.insert("a".to_string(), "1'".to_string());
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get("a").as_deref(), Some("1'"));
        assert_eq!(cache.get("b").as_deref(), Some("2"));
    }

    #[test]
    fn concurrent_access_is_safe() {
        let cache = std::sync::Arc::new(ShardedCache::new(64, 8));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let cache = cache.clone();
                scope.spawn(move || {
                    for i in 0..200 {
                        let key = format!("k{}", (t * 31 + i) % 40);
                        if cache.get(&key).is_none() {
                            cache.insert(key.clone(), format!("v{key}"));
                        }
                    }
                });
            }
        });
        assert!(cache.len() <= 64);
        for i in 0..40 {
            let key = format!("k{i}");
            if let Some(body) = cache.get(&key) {
                assert_eq!(body, format!("v{key}"));
            }
        }
    }
}
