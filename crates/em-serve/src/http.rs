//! Minimal HTTP/1.1 framing over `std::net` streams.
//!
//! Implements exactly what the service needs: request-line + header
//! parsing, `Content-Length` bodies with a size cap, and response writing.
//! Every connection is `Connection: close` — the worker pool gives
//! concurrency, so keep-alive bookkeeping would buy latency only for
//! clients that pipeline, which the bench shows is not the bottleneck
//! (explanation compute is).

use std::io::{BufRead, BufReader, Read, Write};

/// Largest accepted request body (1 MiB) — an EM record pair is a few KB.
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// Largest accepted header section.
const MAX_HEADER_BYTES: usize = 16 << 10;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// `GET`, `POST`, ...
    pub method: String,
    /// The request path (query strings are not used by this API).
    pub path: String,
    /// Headers with lower-cased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length`).
    pub body: String,
}

impl Request {
    /// First header with the given lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A framing/parse failure, mapped to a 4xx by the server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Malformed request line or header.
    Malformed(String),
    /// Body longer than [`MAX_BODY_BYTES`] (→ 413).
    BodyTooLarge,
    /// The socket failed or closed mid-request.
    Io(String),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::BodyTooLarge => write!(f, "request body too large"),
            HttpError::Io(m) => write!(f, "i/o: {m}"),
        }
    }
}

impl std::error::Error for HttpError {}

/// Reads one HTTP/1.1 request from `stream`.
pub fn read_request<S: Read>(stream: S) -> Result<Request, HttpError> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| HttpError::Io(e.to_string()))?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request line".into()))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing path".into()))?
        .to_string();
    let version = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!("bad version {version:?}")));
    }

    let mut headers = Vec::new();
    let mut header_bytes = 0usize;
    loop {
        let mut header = String::new();
        reader
            .read_line(&mut header)
            .map_err(|e| HttpError::Io(e.to_string()))?;
        let trimmed = header.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        header_bytes += header.len();
        if header_bytes > MAX_HEADER_BYTES {
            return Err(HttpError::Malformed("header section too large".into()));
        }
        let (name, value) = trimmed
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("bad header line {trimmed:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| HttpError::Malformed("bad content-length".into()))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::BodyTooLarge);
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| HttpError::Io(e.to_string()))?;
    let body =
        String::from_utf8(body).map_err(|_| HttpError::Malformed("body is not utf-8".into()))?;

    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

/// A response ready to serialize.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Extra headers (e.g. `X-Cache`).
    pub extra_headers: Vec<(String, String)>,
    /// The body.
    pub body: String,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            extra_headers: Vec::new(),
            body,
        }
    }

    /// A plain-text response (used by `/metrics`).
    pub fn text(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            extra_headers: Vec::new(),
            body,
        }
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: &str) -> Response {
        self.extra_headers
            .push((name.to_string(), value.to_string()));
        self
    }

    /// Serializes and writes the response (always `Connection: close`).
    pub fn write_to<W: Write>(&self, mut stream: W) -> std::io::Result<()> {
        let mut out = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            status_reason(self.status),
            self.content_type,
            self.body.len(),
        );
        for (name, value) in &self.extra_headers {
            out.push_str(name);
            out.push_str(": ");
            out.push_str(value);
            out.push_str("\r\n");
        }
        out.push_str("\r\n");
        out.push_str(&self.body);
        stream.write_all(out.as_bytes())?;
        stream.flush()
    }
}

/// The reason phrase for the status codes this server emits.
fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_post_with_body() {
        let raw = "POST /explain HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\n{\"a\"";
        let req = read_request(raw.as_bytes()).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/explain");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, "{\"a\"");
    }

    #[test]
    fn parses_a_get_without_body() {
        let req = read_request("GET /healthz HTTP/1.1\r\n\r\n".as_bytes()).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.body, "");
    }

    #[test]
    fn header_names_are_lowercased() {
        let req =
            read_request("GET / HTTP/1.1\r\nX-Custom-THING:  v  \r\n\r\n".as_bytes()).unwrap();
        assert_eq!(req.header("x-custom-thing"), Some("v"));
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(matches!(
            read_request("\r\n\r\n".as_bytes()),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            read_request("GET /\r\n\r\n".as_bytes()),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            read_request("GET / SPDY/9\r\n\r\n".as_bytes()),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            read_request("GET / HTTP/1.1\r\nno-colon-here\r\n\r\n".as_bytes()),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_oversized_bodies_without_reading_them() {
        let raw = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(
            read_request(raw.as_bytes()),
            Err(HttpError::BodyTooLarge)
        ));
    }

    #[test]
    fn truncated_body_is_an_io_error() {
        let raw = "POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort";
        assert!(matches!(
            read_request(raw.as_bytes()),
            Err(HttpError::Io(_))
        ));
    }

    #[test]
    fn response_wire_format_is_well_formed() {
        let mut buf = Vec::new();
        Response::json(200, "{\"ok\":true}".to_string())
            .with_header("X-Cache", "hit")
            .write_to(&mut buf)
            .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("X-Cache: hit\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
    }
}
