//! Minimal HTTP/1.1 framing over `std::net` streams.
//!
//! Implements exactly what the service needs: request-line + header
//! parsing, `Content-Length` bodies with a size cap, and response writing.
//! Every connection is `Connection: close` — the worker pool gives
//! concurrency, so keep-alive bookkeeping would buy latency only for
//! clients that pipeline, which the bench shows is not the bottleneck
//! (explanation compute is).

use std::io::{BufRead, BufReader, Read, Write};

/// Largest accepted request body (1 MiB) — an EM record pair is a few KB.
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// Largest accepted header section.
const MAX_HEADER_BYTES: usize = 16 << 10;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// `GET`, `POST`, ...
    pub method: String,
    /// The request path (query strings are not used by this API).
    pub path: String,
    /// Headers with lower-cased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length`).
    pub body: String,
}

impl Request {
    /// First header with the given lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Which part of the request was being read when a timeout fired. The
/// server maps the phases to distinct reject causes so a header-dripping
/// slowloris and a body-dripping client are distinguishable in
/// `/metrics`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadPhase {
    /// Request line or header section.
    Header,
    /// The `Content-Length`-declared body.
    Body,
}

impl ReadPhase {
    /// Human label, used in error messages.
    pub fn label(self) -> &'static str {
        match self {
            ReadPhase::Header => "header",
            ReadPhase::Body => "body",
        }
    }
}

/// A framing/parse failure, mapped to a 4xx by the server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Malformed request line or header.
    Malformed(String),
    /// Body longer than [`MAX_BODY_BYTES`] (→ 413).
    BodyTooLarge,
    /// The peer closed the connection before sending any request byte —
    /// a plain port probe or health-checker connect. Not a protocol
    /// error: the server writes no response and bumps no error counter.
    Closed,
    /// The connection deadline (or a socket timeout) expired while
    /// reading the given phase (→ 408).
    Timeout(ReadPhase),
    /// The socket failed or closed mid-request.
    Io(String),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::BodyTooLarge => write!(f, "request body too large"),
            HttpError::Closed => write!(f, "connection closed before any request byte"),
            HttpError::Timeout(phase) => {
                write!(f, "request deadline exceeded reading the {}", phase.label())
            }
            HttpError::Io(m) => write!(f, "i/o: {m}"),
        }
    }
}

impl std::error::Error for HttpError {}

/// Maps a raw I/O failure to [`HttpError::Timeout`] when it is a timeout
/// (either kind the platform uses for an expired socket timeout), and to
/// [`HttpError::Io`] otherwise.
fn classify_io(error: std::io::Error, phase: ReadPhase) -> HttpError {
    if crate::deadline::is_timeout(&error) {
        HttpError::Timeout(phase)
    } else {
        HttpError::Io(error.to_string())
    }
}

/// Reads one `\n`-terminated line of at most `budget` bytes (terminator
/// included), without buffering anything past the cap. Returns the empty
/// string on EOF. A line longer than `budget` is rejected — this is what
/// keeps a newline-less request line (or a single huge header line) from
/// buffering unboundedly.
fn read_capped_line<R: BufRead>(
    reader: &mut R,
    budget: usize,
    what: &str,
) -> Result<String, HttpError> {
    let mut line = String::new();
    let n = reader
        .take(budget as u64 + 1)
        .read_line(&mut line)
        .map_err(|e| classify_io(e, ReadPhase::Header))?;
    if n > budget {
        return Err(HttpError::Malformed(format!(
            "{what} exceeds the {MAX_HEADER_BYTES}-byte header cap"
        )));
    }
    Ok(line)
}

/// Reads one HTTP/1.1 request from `stream`.
pub fn read_request<S: Read>(stream: S) -> Result<Request, HttpError> {
    let mut reader = BufReader::new(stream);
    // The request line, headers, and terminating blank line all count
    // against one [`MAX_HEADER_BYTES`] budget, enforced *while* reading.
    let mut budget = MAX_HEADER_BYTES;
    let line = read_capped_line(&mut reader, budget, "request line")?;
    if line.is_empty() {
        return Err(HttpError::Closed);
    }
    budget -= line.len();
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request line".into()))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing path".into()))?
        .to_string();
    let version = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!("bad version {version:?}")));
    }

    let mut headers = Vec::new();
    loop {
        let header = read_capped_line(&mut reader, budget, "header section")?;
        let trimmed = header.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        budget -= header.len();
        let (name, value) = trimmed
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("bad header line {trimmed:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    // Every `Content-Length` header must agree. Resolving duplicates to
    // any single one silently (the old `find` behaviour) is the classic
    // request-smuggling bug: two parsers picking different values frame
    // the connection differently.
    let mut declared: Option<usize> = None;
    for (name, value) in &headers {
        if name != "content-length" {
            continue;
        }
        let parsed = value
            .parse::<usize>()
            .map_err(|_| HttpError::Malformed("bad content-length".into()))?;
        match declared {
            Some(previous) if previous != parsed => {
                return Err(HttpError::Malformed(
                    "conflicting content-length headers".into(),
                ));
            }
            _ => declared = Some(parsed),
        }
    }
    let content_length = declared.unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::BodyTooLarge);
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| classify_io(e, ReadPhase::Body))?;
    let body =
        String::from_utf8(body).map_err(|_| HttpError::Malformed("body is not utf-8".into()))?;

    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

/// A response ready to serialize.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Extra headers (e.g. `X-Cache`).
    pub extra_headers: Vec<(String, String)>,
    /// The body.
    pub body: String,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            extra_headers: Vec::new(),
            body,
        }
    }

    /// A plain-text response (used by `/metrics`).
    pub fn text(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            extra_headers: Vec::new(),
            body,
        }
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: &str) -> Response {
        self.extra_headers
            .push((name.to_string(), value.to_string()));
        self
    }

    /// Serializes the response to its wire bytes (always
    /// `Connection: close`). Split from [`Response::write_to`] so the
    /// accept loop can attempt a single non-blocking shed write.
    pub fn to_wire(&self) -> String {
        let mut out = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            status_reason(self.status),
            self.content_type,
            self.body.len(),
        );
        for (name, value) in &self.extra_headers {
            out.push_str(name);
            out.push_str(": ");
            out.push_str(value);
            out.push_str("\r\n");
        }
        out.push_str("\r\n");
        out.push_str(&self.body);
        out
    }

    /// Serializes and writes the response (always `Connection: close`).
    pub fn write_to<W: Write>(&self, mut stream: W) -> std::io::Result<()> {
        stream.write_all(self.to_wire().as_bytes())?;
        stream.flush()
    }
}

/// The reason phrase for the status codes this server emits.
fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Internal Server Error",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_post_with_body() {
        let raw = "POST /explain HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\n{\"a\"";
        let req = read_request(raw.as_bytes()).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/explain");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, "{\"a\"");
    }

    #[test]
    fn parses_a_get_without_body() {
        let req = read_request("GET /healthz HTTP/1.1\r\n\r\n".as_bytes()).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.body, "");
    }

    #[test]
    fn header_names_are_lowercased() {
        let req =
            read_request("GET / HTTP/1.1\r\nX-Custom-THING:  v  \r\n\r\n".as_bytes()).unwrap();
        assert_eq!(req.header("x-custom-thing"), Some("v"));
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(matches!(
            read_request("\r\n\r\n".as_bytes()),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            read_request("GET /\r\n\r\n".as_bytes()),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            read_request("GET / SPDY/9\r\n\r\n".as_bytes()),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            read_request("GET / HTTP/1.1\r\nno-colon-here\r\n\r\n".as_bytes()),
            Err(HttpError::Malformed(_))
        ));
    }

    /// A reader that never yields a newline — a socket-level slowloris.
    /// With the old unbounded `read_line` this made `read_request` buffer
    /// forever; the capped read must bail after [`MAX_HEADER_BYTES`].
    struct EndlessBytes;

    impl Read for EndlessBytes {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            for b in buf.iter_mut() {
                *b = b'a';
            }
            Ok(buf.len())
        }
    }

    #[test]
    fn oversized_request_line_is_rejected_not_buffered() {
        // Regression: an endless request line used to grow the line buffer
        // without bound. Terminating at all proves the cap is enforced.
        assert!(matches!(
            read_request(EndlessBytes),
            Err(HttpError::Malformed(m)) if m.contains("request line")
        ));
    }

    #[test]
    fn oversized_header_line_is_rejected_not_buffered() {
        let head = "GET / HTTP/1.1\r\nX-Huge: ".as_bytes();
        assert!(matches!(
            read_request(head.chain(EndlessBytes)),
            Err(HttpError::Malformed(m)) if m.contains("header section")
        ));
    }

    #[test]
    fn header_section_at_the_cap_is_rejected() {
        let filler = "a".repeat(MAX_HEADER_BYTES);
        let raw = format!("GET / HTTP/1.1\r\nX-Filler: {filler}\r\n\r\n");
        assert!(matches!(
            read_request(raw.as_bytes()),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn eof_before_any_byte_is_a_clean_close() {
        // Regression: a bare connect-and-close (port probe) used to surface
        // as `Malformed("empty request line")` and bump the error counter.
        assert!(matches!(
            read_request("".as_bytes()),
            Err(HttpError::Closed)
        ));
    }

    #[test]
    fn conflicting_content_lengths_are_rejected() {
        // Regression: `find` used to silently pick the first value — the
        // request-smuggling framing ambiguity.
        let raw = "POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 2\r\n\r\nabcd";
        assert!(matches!(
            read_request(raw.as_bytes()),
            Err(HttpError::Malformed(m)) if m.contains("conflicting")
        ));
    }

    #[test]
    fn duplicate_identical_content_lengths_are_tolerated() {
        let raw = "POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\nabcd";
        let req = read_request(raw.as_bytes()).unwrap();
        assert_eq!(req.body, "abcd");
    }

    #[test]
    fn rejects_oversized_bodies_without_reading_them() {
        let raw = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(
            read_request(raw.as_bytes()),
            Err(HttpError::BodyTooLarge)
        ));
    }

    #[test]
    fn truncated_body_is_an_io_error() {
        let raw = "POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort";
        assert!(matches!(
            read_request(raw.as_bytes()),
            Err(HttpError::Io(_))
        ));
    }

    #[test]
    fn response_wire_format_is_well_formed() {
        let mut buf = Vec::new();
        Response::json(200, "{\"ok\":true}".to_string())
            .with_header("X-Cache", "hit")
            .write_to(&mut buf)
            .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("X-Cache: hit\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
    }
}
