//! Property tests for the em-serve JSON layer: every value the writer can
//! emit must survive encode → decode unchanged, and the parser must never
//! panic on garbage.

use em_serve::json::Value;
use proptest::prelude::*;

/// Strings mixing JSON-hostile fragments: quotes, backslashes, control
/// characters, non-ASCII, and plain text.
fn arb_string() -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop_oneof![
            Just("\"".to_string()),
            Just("\\".to_string()),
            Just("\n\t\r".to_string()),
            Just("\u{0}".to_string()),
            Just("\u{1f}".to_string()),
            Just("é ü ß".to_string()),
            Just("🦀".to_string()),
            Just("날씨".to_string()),
            Just("/".to_string()),
            Just("sony alpha".to_string()),
            Just(String::new()),
            "[a-z0-9 ]{0,8}".prop_map(|s| s),
        ],
        0..6,
    )
    .prop_map(|parts| parts.concat())
}

/// Finite numbers, including negatives, tiny magnitudes, and integers.
fn arb_number() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(0.0),
        Just(-0.5),
        Just(1e-12),
        Just(-849.99),
        (-1.0e9..1.0e9).prop_map(|f| f),
        (0u32..1_000_000).prop_map(f64::from),
    ]
}

fn arb_leaf() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::from),
        arb_number().prop_map(Value::from),
        arb_string().prop_map(Value::String),
    ]
}

/// Nested values: up to `depth` levels of arrays/objects over the leaves.
fn arb_value_depth(depth: usize) -> Box<dyn Strategy<Value = Value>> {
    if depth == 0 {
        return Box::new(arb_leaf());
    }
    Box::new(prop_oneof![
        arb_value_depth(depth - 1),
        prop::collection::vec(arb_value_depth(depth - 1), 0..4).prop_map(Value::Array),
        prop::collection::vec((arb_string(), arb_value_depth(depth - 1)), 0..4)
            .prop_map(Value::Object),
    ])
}

fn arb_value() -> impl Strategy<Value = Value> {
    arb_value_depth(3)
}

proptest! {
    #[test]
    fn strings_roundtrip(s in arb_string()) {
        let encoded = Value::String(s.clone()).to_json();
        let decoded = Value::parse(&encoded).expect("writer output must parse");
        prop_assert_eq!(decoded.as_str(), Some(s.as_str()));
    }

    #[test]
    fn numbers_roundtrip_bit_exact(n in arb_number()) {
        let encoded = Value::from(n).to_json();
        let decoded = Value::parse(&encoded).expect("writer output must parse");
        // Shortest-roundtrip formatting makes f64 → text → f64 exact.
        prop_assert_eq!(decoded.as_f64().unwrap().to_bits(), n.to_bits());
    }

    #[test]
    fn nested_values_roundtrip(v in arb_value()) {
        let encoded = v.to_json();
        let decoded = Value::parse(&encoded).expect("writer output must parse");
        prop_assert_eq!(&decoded, &v);
        // And encoding is deterministic / idempotent through a round-trip.
        prop_assert_eq!(decoded.to_json(), encoded);
    }

    #[test]
    fn parser_never_panics_on_garbage(s in "[\\[\\]{}\",:a-z0-9.eE+\\- \\\\]{0,32}") {
        // Ok or Err are both fine; panicking is not.
        let _ = Value::parse(&s);
    }

    #[test]
    fn truncations_of_valid_json_error_cleanly(v in arb_value(), cut in 0usize..64) {
        let encoded = v.to_json();
        if cut < encoded.len() {
            // Cut on a char boundary to keep the input valid UTF-8.
            let mut at = cut;
            while !encoded.is_char_boundary(at) {
                at -= 1;
            }
            if at > 0 {
                let _ = Value::parse(&encoded[..at]);
            }
        }
    }
}
