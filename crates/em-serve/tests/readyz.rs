//! Readiness vs. liveness: `GET /readyz` must flip to 503 after
//! `POST /drain` while `/healthz` keeps answering 200 — a draining node
//! is alive (it still serves traffic sent directly at it) but must not
//! receive *new* traffic from a routing tier.

use em_entity::{EntityPair, MatchModel, Schema};
use em_serve::client;
use em_serve::json::Value;
use em_serve::{Server, ServerConfig};

/// A trivial model: these tests exercise the lifecycle only.
struct ConstModel;

impl MatchModel for ConstModel {
    fn predict_proba(&self, _schema: &Schema, _pair: &EntityPair) -> f64 {
        0.5
    }
}

fn spawn_server() -> em_serve::ServerHandle {
    Server::bind(
        "127.0.0.1:0",
        Schema::from_names(vec!["name"]),
        Box::new(ConstModel),
        ServerConfig {
            parallelism: em_par::ParallelismConfig::with_threads(2),
            ..Default::default()
        },
    )
    .expect("bind ephemeral port")
    .spawn()
}

#[test]
fn readyz_reports_503_while_draining() {
    let handle = spawn_server();
    let addr = handle.addr();

    // Before draining: ready, not draining, queue depth reported.
    let ready = client::request(addr, "GET", "/readyz", "").unwrap();
    assert_eq!(ready.status, 200);
    let body = Value::parse(&ready.body).unwrap();
    assert_eq!(body.get("ready").unwrap().as_bool(), Some(true));
    assert_eq!(body.get("draining").unwrap().as_bool(), Some(false));
    assert!(
        body.get("queue_depth").unwrap().as_f64().is_some(),
        "queue_depth must be a number: {}",
        ready.body
    );

    // Drain is acknowledged...
    let drain = client::request(addr, "POST", "/drain", "").unwrap();
    assert_eq!(drain.status, 200);
    assert_eq!(
        Value::parse(&drain.body)
            .unwrap()
            .get("draining")
            .unwrap()
            .as_bool(),
        Some(true)
    );

    // ...after which readiness is 503 but liveness stays 200: the node
    // still answers direct traffic, it just wants no new assignments.
    let draining = client::request(addr, "GET", "/readyz", "").unwrap();
    assert_eq!(draining.status, 503);
    let body = Value::parse(&draining.body).unwrap();
    assert_eq!(body.get("ready").unwrap().as_bool(), Some(false));
    assert_eq!(body.get("draining").unwrap().as_bool(), Some(true));
    let health = client::request(addr, "GET", "/healthz", "").unwrap();
    assert_eq!(health.status, 200);

    // A draining node still serves: /predict keeps working.
    let pred = client::request(
        addr,
        "POST",
        "/predict",
        r#"{"pair":{"left":{"name":"a"},"right":{"name":"b"}}}"#,
    )
    .unwrap();
    assert_eq!(pred.status, 200);

    // Wrong methods are rejected, not silently tolerated.
    assert_eq!(
        client::request(addr, "POST", "/readyz", "").unwrap().status,
        405
    );
    assert_eq!(
        client::request(addr, "GET", "/drain", "").unwrap().status,
        405
    );

    let bye = client::request(addr, "POST", "/shutdown", "").unwrap();
    assert_eq!(bye.status, 200);
    handle.join();
}
