//! End-to-end test: a real `TcpListener` on an ephemeral port, a trained
//! matcher behind it, and assertions that the served explanation is
//! bit-identical to a direct explainer call — on both the cold and the
//! cached path — with the metrics counters moving accordingly.

use em_datagen::{DatasetId, MagellanBenchmark};
use em_entity::{EntityPair, MatchModel, Schema};
use em_matchers::{LogisticMatcher, MatcherConfig};
use em_par::ParallelismConfig;
use em_serve::client;
use em_serve::json::Value;
use em_serve::{ExplainOptions, Server, ServerConfig};
use landmark_core::{LandmarkConfig, LandmarkExplainer};

const N_SAMPLES: usize = 64;
const SEED: u64 = 42;

fn explain_body(schema: &Schema, pair: &EntityPair) -> String {
    let entity = |e: &em_entity::Entity| {
        Value::Object(
            (0..schema.len())
                .map(|i| (schema.name(i).to_string(), Value::string(e.value(i))))
                .collect(),
        )
    };
    Value::object(vec![
        (
            "pair",
            Value::object(vec![
                ("left", entity(&pair.left)),
                ("right", entity(&pair.right)),
            ]),
        ),
        ("explainer", Value::string("landmark")),
        (
            "config",
            Value::object(vec![
                ("n_samples", N_SAMPLES.into()),
                ("seed", Value::Number(SEED as f64)),
            ]),
        ),
    ])
    .to_json()
}

/// Reads `name value` from the Prometheus text output.
fn metric(text: &str, name: &str) -> u64 {
    text.lines()
        .find_map(|line| {
            line.strip_prefix(name)
                .and_then(|rest| rest.strip_prefix(' ').and_then(|v| v.parse().ok()))
        })
        .unwrap_or_else(|| panic!("metric {name} not found"))
}

#[test]
fn serves_bit_identical_explanations_with_cache_and_metrics() {
    // A small but real setup: generated benchmark data, trained matcher.
    let dataset = MagellanBenchmark::scaled(0.05).generate(DatasetId::SFz);
    let schema = dataset.schema().clone();
    let pair = dataset.records()[0].pair.clone();
    let matcher = LogisticMatcher::train(&dataset, &MatcherConfig::default());

    // Ground truth, computed before the matcher moves into the server.
    let direct = LandmarkExplainer::new(LandmarkConfig {
        n_samples: N_SAMPLES,
        seed: SEED,
        ..Default::default()
    })
    .explain(&matcher, &schema, &pair);
    let direct_prob = matcher.predict_proba(&schema, &pair);

    let server = Server::bind(
        "127.0.0.1:0",
        schema.clone(),
        Box::new(matcher),
        ServerConfig {
            parallelism: ParallelismConfig::with_threads(2),
            cache_capacity: 64,
            defaults: ExplainOptions::default(),
            ..Default::default()
        },
    )
    .expect("bind ephemeral port");
    let handle = server.spawn();
    let addr = handle.addr();

    // Liveness.
    let health = client::request(addr, "GET", "/healthz", "").unwrap();
    assert_eq!(health.status, 200);
    assert_eq!(
        Value::parse(&health.body)
            .unwrap()
            .get("status")
            .unwrap()
            .as_str(),
        Some("ok")
    );

    // Cold explanation.
    let body = explain_body(&schema, &pair);
    let cold = client::request(addr, "POST", "/explain", &body).unwrap();
    assert_eq!(cold.status, 200, "{}", cold.body);
    assert_eq!(cold.header("x-cache"), Some("miss"));
    let parsed = Value::parse(&cold.body).expect("response is well-formed JSON");
    assert_eq!(parsed.get("explainer").unwrap().as_str(), Some("landmark"));
    let views = parsed.get("explanations").unwrap().as_array().unwrap();
    assert_eq!(views.len(), 2);

    // The served token weights must be bit-identical to the direct call:
    // the JSON layer writes f64 in shortest-roundtrip form, so parsing
    // recovers the exact bits.
    for (view, direct_view) in views.iter().zip(direct.both()) {
        let weights = view.get("token_weights").unwrap().as_array().unwrap();
        assert_eq!(weights.len(), direct_view.explanation.len());
        assert!(!weights.is_empty(), "explanation should not be empty");
        for (w, tw) in weights.iter().zip(direct_view.explanation.iter()) {
            assert_eq!(
                w.get("weight").unwrap().as_f64().unwrap().to_bits(),
                tw.weight.to_bits(),
                "served weight differs from direct explainer"
            );
            assert_eq!(
                w.get("text").unwrap().as_str().unwrap(),
                tw.token.text.as_str()
            );
            assert_eq!(w.get("side").unwrap().as_str().unwrap(), tw.side.prefix());
        }
        assert_eq!(
            view.get("model_prediction")
                .unwrap()
                .as_f64()
                .unwrap()
                .to_bits(),
            direct_view.explanation.model_prediction.to_bits()
        );
    }

    // Cached repeat: byte-identical body, hit header, counters move.
    let warm = client::request(addr, "POST", "/explain", &body).unwrap();
    assert_eq!(warm.status, 200);
    assert_eq!(warm.header("x-cache"), Some("hit"));
    assert_eq!(warm.body, cold.body, "cached body must be byte-identical");

    // The tracing layer reports stage timings without changing the body.
    let cold_timing = cold.header("x-timing").expect("X-Timing on cold path");
    assert!(cold_timing.starts_with("total="), "{cold_timing}");
    assert!(cold_timing.contains("model_scoring="), "{cold_timing}");
    assert!(cold_timing.contains("surrogate_fit="), "{cold_timing}");
    let warm_timing = warm.header("x-timing").expect("X-Timing on warm path");
    assert!(warm_timing.starts_with("total="), "{warm_timing}");
    assert!(
        !warm_timing.contains("model_scoring="),
        "a cache hit runs no pipeline stage: {warm_timing}"
    );

    let metrics_text = client::request(addr, "GET", "/metrics", "").unwrap();
    assert_eq!(metrics_text.status, 200);
    let text = metrics_text.body;
    assert_eq!(
        metric(&text, "em_serve_requests_total{endpoint=\"explain\"}"),
        2
    );
    assert_eq!(metric(&text, "em_serve_cache_hits_total"), 1);
    assert_eq!(metric(&text, "em_serve_cache_misses_total"), 1);
    assert_eq!(metric(&text, "em_serve_cache_entries"), 1);
    assert_eq!(
        metric(&text, "em_serve_requests_total{endpoint=\"healthz\"}"),
        1
    );
    assert!(
        metric(
            &text,
            "em_serve_request_latency_us_count{endpoint=\"explain\"}"
        ) == 2
    );
    // Only the cold request ran the pipeline, so each stage histogram saw
    // exactly one observation.
    assert_eq!(
        metric(
            &text,
            "em_serve_stage_latency_us_count{stage=\"model_scoring\"}"
        ),
        1
    );
    assert_eq!(
        metric(
            &text,
            "em_serve_stage_latency_us_count{stage=\"surrogate_fit\"}"
        ),
        1
    );

    // Prediction agrees bit-for-bit with the matcher.
    let predict_body = {
        let root = Value::parse(&body).unwrap();
        Value::object(vec![("pair", root.get("pair").unwrap().clone())]).to_json()
    };
    let pred = client::request(addr, "POST", "/predict", &predict_body).unwrap();
    assert_eq!(pred.status, 200);
    let pred = Value::parse(&pred.body).unwrap();
    assert_eq!(
        pred.get("probability").unwrap().as_f64().unwrap().to_bits(),
        direct_prob.to_bits()
    );
    assert_eq!(
        pred.get("match").unwrap().as_bool(),
        Some(direct_prob >= 0.5)
    );

    // Error paths stay structured.
    let bad = client::request(addr, "POST", "/explain", "{not json").unwrap();
    assert_eq!(bad.status, 400);
    assert!(Value::parse(&bad.body).unwrap().get("error").is_some());
    assert_eq!(
        client::request(addr, "GET", "/explain", "").unwrap().status,
        405
    );
    assert_eq!(
        client::request(addr, "GET", "/nope", "").unwrap().status,
        404
    );

    // A fresh request after the errors still hits the cache.
    let again = client::request(addr, "POST", "/explain", &body).unwrap();
    assert_eq!(again.header("x-cache"), Some("hit"));
    assert_eq!(again.body, cold.body);

    // Graceful shutdown: acknowledged, then the thread joins.
    let bye = client::request(addr, "POST", "/shutdown", "").unwrap();
    assert_eq!(bye.status, 200);
    handle.join();
}
