//! Adversarial HTTP framing tests over real TCP: hostile or broken
//! clients must get clean 4xx answers (or silence, for a bare probe),
//! the metrics counters must move exactly as specified, and no worker
//! may wedge — a well-formed request after every attack still succeeds.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::Duration;

use em_entity::{EntityPair, MatchModel, Schema};
use em_serve::client;
use em_serve::{Server, ServerConfig};

/// A model that never looks at the pair — these tests exercise framing,
/// not explanation quality.
struct ConstModel;

impl MatchModel for ConstModel {
    fn predict_proba(&self, _schema: &Schema, _pair: &EntityPair) -> f64 {
        0.5
    }
}

/// Writes raw bytes to the server and returns everything it sends back.
/// `close_write` half-closes the socket first, so the server sees EOF
/// where it expects more body.
fn raw_roundtrip(addr: SocketAddr, payload: &[u8], close_write: bool) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("set read timeout");
    stream.write_all(payload).expect("write payload");
    if close_write {
        stream.shutdown(Shutdown::Write).expect("half-close");
    }
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    response
}

/// Reads `name value` from the Prometheus text output.
fn metric(text: &str, name: &str) -> u64 {
    text.lines()
        .find_map(|line| {
            line.strip_prefix(name)
                .and_then(|rest| rest.strip_prefix(' ').and_then(|v| v.parse().ok()))
        })
        .unwrap_or_else(|| panic!("metric {name} not found"))
}

#[test]
fn hostile_framing_is_rejected_cleanly_and_nothing_wedges() {
    let schema = Schema::from_names(vec!["name"]);
    let server = Server::bind(
        "127.0.0.1:0",
        schema,
        Box::new(ConstModel),
        ServerConfig::default(),
    )
    .expect("bind ephemeral port");
    let handle = server.spawn();
    let addr = handle.addr();

    // 1. Immediate-close probe: connect and hang up without a byte. The
    //    server must not answer it and must not count it as malformed.
    drop(TcpStream::connect(addr).expect("probe connect"));

    // 2. Oversized request line: one byte past the 16 KiB header cap,
    //    with no newline. The old unbounded `read_line` buffered such
    //    lines forever; the capped read rejects with a 400. (Exactly
    //    cap+1 bytes so the server drains our send entirely — leftover
    //    unread bytes would turn its close into a TCP reset.)
    let oversized = raw_roundtrip(addr, &vec![b'a'; (16 << 10) + 1], false);
    assert!(oversized.starts_with("HTTP/1.1 400 "), "{oversized}");
    assert!(oversized.contains("header cap"), "{oversized}");

    // 3. Conflicting Content-Length values: the request-smuggling
    //    ambiguity. Must be refused outright, not resolved silently.
    //    (No body bytes follow: the server rejects on the headers alone.)
    let conflicting = raw_roundtrip(
        addr,
        b"POST /explain HTTP/1.1\r\nContent-Length: 10\r\nContent-Length: 4\r\n\r\n",
        false,
    );
    assert!(conflicting.starts_with("HTTP/1.1 400 "), "{conflicting}");
    assert!(conflicting.contains("conflicting"), "{conflicting}");

    // 4. Duplicate but *identical* Content-Length values are harmless and
    //    stay accepted.
    let duplicate = raw_roundtrip(
        addr,
        b"GET /healthz HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nhi",
        false,
    );
    assert!(duplicate.starts_with("HTTP/1.1 200 "), "{duplicate}");

    // 5. Truncated body: Content-Length promises 100 bytes, the client
    //    half-closes after 5. The worker must not hang waiting; the EOF
    //    surfaces as a 400.
    let truncated = raw_roundtrip(
        addr,
        b"POST /explain HTTP/1.1\r\nContent-Length: 100\r\n\r\nshort",
        true,
    );
    assert!(truncated.starts_with("HTTP/1.1 400 "), "{truncated}");

    // No worker is wedged: a well-formed request still round-trips.
    let health = client::request(addr, "GET", "/healthz", "").unwrap();
    assert_eq!(health.status, 200);

    // Give the probe's worker a moment to finish its (silent) handling
    // before scraping counters.
    std::thread::sleep(Duration::from_millis(200));
    let text = client::request(addr, "GET", "/metrics", "").unwrap().body;
    // Exactly the three malformed requests — the bare probe adds nothing.
    assert_eq!(
        metric(&text, "em_serve_requests_total{endpoint=\"other\"}"),
        3
    );
    assert_eq!(
        metric(&text, "em_serve_request_errors_total{endpoint=\"other\"}"),
        3
    );
    // The two good requests (healthz here, plus the duplicate-CL healthz).
    assert_eq!(
        metric(&text, "em_serve_requests_total{endpoint=\"healthz\"}"),
        2
    );
    assert_eq!(
        metric(&text, "em_serve_request_errors_total{endpoint=\"healthz\"}"),
        0
    );

    let bye = client::request(addr, "POST", "/shutdown", "").unwrap();
    assert_eq!(bye.status, 200);
    handle.join();
}
