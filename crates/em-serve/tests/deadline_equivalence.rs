//! Property test: deadline enforcement is invisible to well-behaved
//! clients. For any (pair, explainer, seed, samples) a prompt client
//! sends, the response body served under an active per-connection
//! [`Deadline`] must be byte-identical to a direct explainer call — the
//! lifecycle hardening may only change *when* a connection dies, never
//! *what* a healthy one receives (DESIGN.md §14).
//!
//! The server runs with a deliberately small-but-sufficient budget so
//! every request executes with a live, counting deadline (reads and
//! writes all pass through `DeadlineStream` with real socket timeouts
//! armed), not an effectively-infinite one.

use std::sync::OnceLock;
use std::time::Duration;

use em_datagen::{DatasetId, MagellanBenchmark};
use em_entity::{EmDataset, EntityPair, MatchModel, Schema};
use em_matchers::{LogisticMatcher, MatcherConfig};
use em_par::ParallelismConfig;
use em_serve::client;
use em_serve::codec::{decode_explain_request, run_explain};
use em_serve::json::Value;
use em_serve::{ExplainOptions, Server, ServerConfig, ServerHandle};
use proptest::prelude::*;

/// One server + one trained matcher shared by every proptest case: the
/// cases differ only in request content, and training per case would
/// dominate the suite. The cache is disabled-by-miss (each distinct
/// config is a distinct key), so equivalence is checked on the compute
/// path, not the cache path.
struct Fixture {
    schema: Schema,
    dataset: EmDataset,
    matcher: LogisticMatcher,
    handle: ServerHandle,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let dataset = MagellanBenchmark::scaled(0.05).generate(DatasetId::SFz);
        let schema = dataset.schema().clone();
        let matcher = LogisticMatcher::train(&dataset, &MatcherConfig::default());
        let server = Server::bind(
            "127.0.0.1:0",
            schema.clone(),
            Box::new(matcher.clone()),
            ServerConfig {
                parallelism: ParallelismConfig::with_threads(2),
                // Small but sufficient: a well-behaved loopback client
                // finishes in milliseconds; the deadline is live either
                // way because every read/write arms a real socket
                // timeout from the remaining budget.
                request_timeout: Duration::from_secs(10),
                max_queue_age: Duration::from_secs(10),
                ..Default::default()
            },
        )
        .expect("bind");
        let handle = server.spawn();
        Fixture {
            schema,
            dataset,
            matcher,
            handle,
        }
    })
}

fn request_body(
    schema: &Schema,
    pair: &EntityPair,
    explainer: &str,
    n_samples: usize,
    seed: u64,
) -> String {
    let entity = |e: &em_entity::Entity| {
        Value::Object(
            (0..schema.len())
                .map(|i| (schema.name(i).to_string(), Value::string(e.value(i))))
                .collect(),
        )
    };
    Value::object(vec![
        (
            "pair",
            Value::object(vec![
                ("left", entity(&pair.left)),
                ("right", entity(&pair.right)),
            ]),
        ),
        ("explainer", Value::string(explainer)),
        (
            "config",
            Value::object(vec![
                ("n_samples", n_samples.into()),
                ("seed", Value::Number(seed as f64)),
            ]),
        ),
    ])
    .to_json()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn served_bytes_match_direct_explainer_under_a_live_deadline(
        record_idx in 0usize..8,
        explainer_idx in 0usize..3,
        n_samples in prop_oneof![Just(16usize), Just(32), Just(48)],
        seed in prop_oneof![Just(0u64), Just(7), Just(12345)],
    ) {
        let fx = fixture();
        let explainer = ["landmark", "landmark-single", "lime"][explainer_idx];
        let pair = &fx.dataset.records()[record_idx % fx.dataset.records().len()].pair;
        let body = request_body(&fx.schema, pair, explainer, n_samples, seed);

        // Ground truth: the explainer invoked directly, no server, no
        // sockets, no deadline anywhere near it.
        let decoded = decode_explain_request(&body, &fx.schema, &ExplainOptions::default())
            .expect("request decodes");
        let boxed: Box<dyn MatchModel + Send + Sync> = Box::new(fx.matcher.clone());
        let direct = run_explain(&boxed, &fx.schema, &decoded).to_json();

        // Served twice — cold then cached — both under the live deadline.
        let cold = client::request(fx.handle.addr(), "POST", "/explain", &body)
            .expect("cold request");
        prop_assert_eq!(cold.status, 200);
        prop_assert_eq!(&cold.body, &direct);
        let cached = client::request(fx.handle.addr(), "POST", "/explain", &body)
            .expect("cached request");
        prop_assert_eq!(cached.status, 200);
        prop_assert_eq!(&cached.body, &direct);
    }
}
