//! Serving-layer check for the prepared scoring kernel.
//!
//! The server holds its model as `Box<dyn MatchModel + Send + Sync>`. The
//! blanket `MatchModel for Box<M>` impl must forward `prepare_scorer` to
//! the boxed matcher — otherwise the serving path would silently fall
//! back to the naive reconstruct-then-extract scorer and the kernel would
//! never run in production. These tests pin both halves of that contract:
//! the boxed path produces byte-identical response bodies to the naive
//! fallback (correctness), through every served explainer kind.

use em_datagen::{DatasetId, MagellanBenchmark};
use em_entity::{EntityPair, MatchModel, Schema};
use em_matchers::{LogisticMatcher, MatcherConfig};
use em_serve::codec::{decode_explain_request, run_explain};
use em_serve::json::Value;
use em_serve::ExplainOptions;

/// Forwards only `predict_proba`: the default `prepare_scorer` kicks in,
/// so every mask is scored by reconstructing the pair from scratch.
struct NaiveOnly(LogisticMatcher);

impl MatchModel for NaiveOnly {
    fn predict_proba(&self, schema: &Schema, pair: &EntityPair) -> f64 {
        self.0.predict_proba(schema, pair)
    }
}

fn request_body(schema: &Schema, pair: &EntityPair, explainer: &str) -> String {
    let entity = |e: &em_entity::Entity| {
        Value::Object(
            (0..schema.len())
                .map(|i| (schema.name(i).to_string(), Value::string(e.value(i))))
                .collect(),
        )
    };
    Value::object(vec![
        (
            "pair",
            Value::object(vec![
                ("left", entity(&pair.left)),
                ("right", entity(&pair.right)),
            ]),
        ),
        ("explainer", Value::string(explainer)),
        (
            "config",
            Value::object(vec![("n_samples", 64usize.into()), ("seed", 7usize.into())]),
        ),
    ])
    .to_json()
}

#[test]
fn boxed_model_serves_bit_identical_to_naive_fallback() {
    let dataset = MagellanBenchmark::scaled(0.05).generate(DatasetId::SFz);
    let schema = dataset.schema().clone();
    let matcher = LogisticMatcher::train(&dataset, &MatcherConfig::default());
    // The exact type the server stores (server.rs `AppState::model`).
    let boxed: Box<dyn MatchModel + Send + Sync> = Box::new(matcher.clone());
    let naive = NaiveOnly(matcher);

    for explainer in [
        "landmark",
        "landmark-single",
        "landmark-double",
        "lime",
        "mojito-copy",
    ] {
        for record in dataset.records().iter().take(3) {
            let body = request_body(&schema, &record.pair, explainer);
            let decoded = decode_explain_request(&body, &schema, &ExplainOptions::default())
                .expect("request decodes");
            let served = run_explain(&boxed, &schema, &decoded).to_json();
            let reference = run_explain(&naive, &schema, &decoded).to_json();
            assert_eq!(
                served, reference,
                "served ({explainer}) body diverged from the naive scorer"
            );
        }
    }
}
