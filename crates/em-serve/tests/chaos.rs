//! Misbehaving-client fault-injection harness, driven over real TCP.
//!
//! Five attack clients — slowloris header drip, byte-at-a-time body
//! drip, connect-and-hold, never-reading receiver, mid-body abort — run
//! concurrently against a live server while healthy `/explain` traffic
//! flows. The request-lifecycle hardening (DESIGN.md §14) must hold all
//! of these at once: healthy requests keep completing with responses
//! byte-identical to an unloaded run, every attack connection is reaped
//! by its deadline, and `/metrics` attributes each rejection to its
//! distinct `em_serve_rejects_total{cause=...}`.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use em_datagen::{DatasetId, MagellanBenchmark};
use em_entity::{EntityPair, MatchModel, Schema};
use em_matchers::{LogisticMatcher, MatcherConfig};
use em_par::ParallelismConfig;
use em_serve::client;
use em_serve::deadline::{is_timeout, Deadline, DeadlineStream};
use em_serve::http::Response;
use em_serve::json::Value;
use em_serve::{Server, ServerConfig};

/// The per-connection budget used by the chaos server: short enough to
/// keep the suite fast, long enough that a healthy request (parse +
/// explain + respond) never brushes against it.
const CHAOS_DEADLINE: Duration = Duration::from_millis(1200);

/// The acceptance bound: every attack connection must be reaped within
/// its deadline plus this slack (queue wait + scheduling).
const REAP_SLACK: Duration = Duration::from_secs(2);

/// How often the drip attacks feed the server one byte — comfortably
/// inside any per-read timeout, so only a total deadline stops them.
const DRIP_INTERVAL: Duration = Duration::from_millis(100);

/// A trivial model for the tests that exercise the lifecycle only.
struct ConstModel;

impl MatchModel for ConstModel {
    fn predict_proba(&self, _schema: &Schema, _pair: &EntityPair) -> f64 {
        0.5
    }
}

/// Reads `name value` from the Prometheus text output.
fn metric(text: &str, name: &str) -> u64 {
    text.lines()
        .find_map(|line| {
            line.strip_prefix(name)
                .and_then(|rest| rest.strip_prefix(' ').and_then(|v| v.parse().ok()))
        })
        .unwrap_or_else(|| panic!("metric {name} not found"))
}

fn reject_count(text: &str, cause: &str) -> u64 {
    metric(
        text,
        &format!("em_serve_rejects_total{{cause=\"{cause}\"}}"),
    )
}

fn explain_body(schema: &Schema, pair: &EntityPair) -> String {
    let entity = |e: &em_entity::Entity| {
        Value::Object(
            (0..schema.len())
                .map(|i| (schema.name(i).to_string(), Value::string(e.value(i))))
                .collect(),
        )
    };
    Value::object(vec![
        (
            "pair",
            Value::object(vec![
                ("left", entity(&pair.left)),
                ("right", entity(&pair.right)),
            ]),
        ),
        ("explainer", Value::string("landmark")),
        (
            "config",
            Value::object(vec![("n_samples", 32usize.into()), ("seed", 7usize.into())]),
        ),
    ])
    .to_json()
}

/// Drains the socket until EOF/reset (the server has finished with us)
/// and returns how long the connection lived since `started`. Polls with
/// a short read timeout so drip attacks can keep dripping in between.
fn await_reaped(stream: &TcpStream, started: Instant, drip: Option<&[u8]>) -> Duration {
    stream
        .set_read_timeout(Some(DRIP_INTERVAL))
        .expect("set read timeout");
    let mut buf = [0u8; 4096];
    loop {
        match (&mut (&*stream)).read(&mut buf) {
            // Response bytes (a 408, say) mean the server is done with
            // us; keep draining until the close comes through.
            Ok(n) if n > 0 => continue,
            Ok(_) => return started.elapsed(), // EOF: reaped
            Err(e) if is_timeout(&e) => {
                // Still alive — drip the next byte if this attack drips.
                if let Some(bytes) = drip {
                    if (&mut (&*stream)).write_all(bytes).is_err() {
                        return started.elapsed(); // reset: reaped
                    }
                }
            }
            Err(_) => return started.elapsed(), // reset: reaped
        }
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "attack connection never reaped"
        );
    }
}

/// Slowloris: a real request line, then header bytes dripped one at a
/// time, forever. Per-read timeouts never fire; the deadline must.
fn slowloris_header_drip(addr: SocketAddr) -> Duration {
    let started = Instant::now();
    let mut stream = TcpStream::connect(addr).expect("slowloris connect");
    stream
        .write_all(b"POST /explain HTTP/1.1\r\n")
        .expect("request line");
    await_reaped(&stream, started, Some(b"X"))
}

/// Body drip: complete headers declaring a body, then one body byte per
/// interval — the body never completes inside the deadline.
fn body_byte_drip(addr: SocketAddr) -> Duration {
    let started = Instant::now();
    let mut stream = TcpStream::connect(addr).expect("body-drip connect");
    stream
        .write_all(b"POST /explain HTTP/1.1\r\nContent-Length: 600\r\n\r\n")
        .expect("headers");
    await_reaped(&stream, started, Some(b"a"))
}

/// Connect-and-hold: open the connection and send nothing at all.
fn connect_and_hold(addr: SocketAddr) -> Duration {
    let started = Instant::now();
    let stream = TcpStream::connect(addr).expect("hold connect");
    await_reaped(&stream, started, None)
}

/// Never-reading receiver: sends a complete valid request, then refuses
/// to read the response for the whole deadline window. A small response
/// lands in kernel buffers and the server moves on (that is the point:
/// the worker is not held hostage); the late drain below must find the
/// connection already finished and closed.
fn never_reading_receiver(addr: SocketAddr, body: &str) -> Duration {
    let started = Instant::now();
    let mut stream = TcpStream::connect(addr).expect("never-reading connect");
    let wire = format!(
        "POST /predict HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(wire.as_bytes()).expect("request");
    // Refuse to read while the server is (maybe) trying to write.
    std::thread::sleep(CHAOS_DEADLINE + REAP_SLACK);
    // The drain must complete near-instantly: everything the server will
    // ever send is already buffered (or the connection is already reset).
    let drain_started = Instant::now();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("set read timeout");
    let mut sink = Vec::new();
    let _ = stream.read_to_end(&mut sink);
    assert!(
        drain_started.elapsed() < Duration::from_secs(2),
        "server still owned the connection after the deadline window"
    );
    started.elapsed()
}

/// Mid-body abort: promise a body, send a fragment, vanish.
fn mid_body_abort(addr: SocketAddr) {
    let mut stream = TcpStream::connect(addr).expect("abort connect");
    stream
        .write_all(b"POST /explain HTTP/1.1\r\nContent-Length: 500\r\n\r\npartial-body")
        .expect("partial request");
    drop(stream); // FIN mid-body; the worker must not wait for the rest
}

/// The acceptance scenario: 8 concurrent attack connections (two each of
/// slowloris, body drip, never-reading, connect-and-hold) plus mid-body
/// aborts against a 4-worker server, while 50 healthy `/explain`
/// requests complete byte-identical to an unloaded run.
#[test]
fn chaos_suite_healthy_traffic_survives_eight_concurrent_attacks() {
    let suite_started = Instant::now();
    let dataset = MagellanBenchmark::scaled(0.05).generate(DatasetId::SFz);
    let schema = dataset.schema().clone();
    let matcher = LogisticMatcher::train(&dataset, &MatcherConfig::default());
    let server = Server::bind(
        "127.0.0.1:0",
        schema.clone(),
        Box::new(matcher),
        ServerConfig {
            parallelism: ParallelismConfig::with_threads(4),
            queue_depth: 256,
            request_timeout: CHAOS_DEADLINE,
            // Generous admission bound: healthy requests queued behind
            // attack waves must not be discarded in this scenario.
            max_queue_age: Duration::from_secs(30),
            ..Default::default()
        },
    )
    .expect("bind");
    let handle = server.spawn();
    let addr = handle.addr();

    // Unloaded baseline: one response body per distinct pair.
    let pairs: Vec<EntityPair> = dataset
        .records()
        .iter()
        .take(5)
        .map(|r| r.pair.clone())
        .collect();
    let bodies: Vec<String> = pairs.iter().map(|p| explain_body(&schema, p)).collect();
    let baselines: Vec<String> = bodies
        .iter()
        .map(|b| {
            let resp = client::request(addr, "POST", "/explain", b).expect("baseline");
            assert_eq!(resp.status, 200);
            resp.body
        })
        .collect();
    let predict_body = bodies[0].clone();

    std::thread::scope(|scope| {
        // 8 attack connections, two of each kind, all at once.
        let attacks: Vec<_> = (0..2)
            .flat_map(|_| {
                vec![
                    scope.spawn(move || ("slowloris", slowloris_header_drip(addr))),
                    scope.spawn(move || ("body-drip", body_byte_drip(addr))),
                    scope.spawn(move || ("connect-and-hold", connect_and_hold(addr))),
                ]
            })
            .collect();
        let never_readers: Vec<_> = (0..2)
            .map(|_| {
                let body = predict_body.clone();
                scope.spawn(move || never_reading_receiver(addr, &body))
            })
            .collect();
        for _ in 0..2 {
            scope.spawn(move || mid_body_abort(addr));
        }

        // Give the attacks a head start so they genuinely contend with
        // the healthy traffic for workers.
        std::thread::sleep(Duration::from_millis(150));

        // 50 healthy requests across 5 client threads.
        let healthy: Vec<_> = (0..5)
            .map(|t| {
                let bodies = bodies.clone();
                let baselines = baselines.clone();
                scope.spawn(move || {
                    for i in 0..10 {
                        let k = (t + i) % bodies.len();
                        let started = Instant::now();
                        let resp = client::request_with_timeout(
                            addr,
                            "POST",
                            "/explain",
                            &bodies[k],
                            Duration::from_secs(20),
                        )
                        .expect("healthy request must complete under attack");
                        assert_eq!(resp.status, 200, "healthy request failed under attack");
                        assert_eq!(
                            resp.body, baselines[k],
                            "response under attack diverged from the unloaded run"
                        );
                        assert!(
                            started.elapsed() < Duration::from_secs(15),
                            "healthy latency unbounded under attack: {:?}",
                            started.elapsed()
                        );
                    }
                })
            })
            .collect();

        for h in healthy {
            h.join().expect("healthy client");
        }
        for a in attacks {
            let (kind, lived) = a.join().expect("attack client");
            assert!(
                lived <= CHAOS_DEADLINE + REAP_SLACK,
                "{kind} connection outlived deadline+slack: {lived:?}"
            );
        }
        for n in never_readers {
            n.join().expect("never-reading client");
        }
    });

    // Every attack kind shows up under its distinct cause.
    let text = client::request(addr, "GET", "/metrics", "")
        .expect("metrics")
        .body;
    assert!(reject_count(&text, "header_deadline") >= 2, "{text}");
    assert!(reject_count(&text, "body_deadline") >= 2, "{text}");
    assert!(reject_count(&text, "idle") >= 2, "{text}");
    assert!(reject_count(&text, "peer_abort") >= 2, "{text}");
    // The healthy traffic all landed on /explain, error-free.
    assert!(metric(&text, "em_serve_requests_total{endpoint=\"explain\"}") >= 55);
    assert_eq!(
        metric(&text, "em_serve_request_errors_total{endpoint=\"explain\"}"),
        0
    );

    let bye = client::request(addr, "POST", "/shutdown", "").expect("shutdown");
    assert_eq!(bye.status, 200);
    handle.join();
    assert!(
        suite_started.elapsed() < Duration::from_secs(60),
        "chaos suite must stay under the CI wall-clock bound, took {:?}",
        suite_started.elapsed()
    );
}

/// Regression (accept-thread blocking shed write): with the worker pool
/// wedged and the queue full, shed 503s go to never-reading clients
/// without the accept loop ever blocking — later connections keep being
/// accepted and answered promptly.
#[test]
fn accept_loop_keeps_accepting_while_shedding_to_never_reading_clients() {
    let server = Server::bind(
        "127.0.0.1:0",
        Schema::from_names(vec!["name"]),
        Box::new(ConstModel),
        ServerConfig {
            parallelism: ParallelismConfig::with_threads(1),
            queue_depth: 1,
            request_timeout: Duration::from_millis(1500),
            max_queue_age: Duration::from_secs(10),
            ..Default::default()
        },
    )
    .expect("bind");
    let handle = server.spawn();
    let addr = handle.addr();

    // Wedge the single worker (connect-and-hold) and fill the one queue
    // slot with a second idle connection.
    let wedge = TcpStream::connect(addr).expect("wedge connect");
    let filler = TcpStream::connect(addr).expect("filler connect");
    std::thread::sleep(Duration::from_millis(150)); // let both settle

    // Five never-reading clients hit the full queue: each gets the
    // non-blocking shed write and never drains it. The old code called a
    // blocking `write_to` on the accept thread here — one such client
    // stalled `accept` for everyone.
    let shed_clients: Vec<TcpStream> = (0..5)
        .map(|i| {
            let mut s = TcpStream::connect(addr)
                .unwrap_or_else(|e| panic!("shed client {i} blocked from connecting: {e}"));
            s.write_all(b"GET /healthz HTTP/1.1\r\n\r\n")
                .expect("request");
            s // kept open, response never read
        })
        .collect();

    // The accept loop must still be servicing new connections promptly.
    // A shed 503 is delivered best-effort: if the probe's request bytes
    // have not yet crossed the loopback when the accept thread closes,
    // the kernel answers later arrivals with RST and the probe sees a
    // reset instead of the 503 — so a reset is retried. What may never
    // happen is a slow or absent *accept*: every attempt must resolve
    // fast, and the whole loop stays under the one-second liveness bound.
    let probe_started = Instant::now();
    let probe = (0..5)
        .find_map(|_| {
            client::request_with_timeout(addr, "GET", "/healthz", "", Duration::from_secs(2)).ok()
        })
        .expect("probe must be accepted and answered while sheds are pending");
    assert_eq!(probe.status, 503, "probe should be shed, not queued");
    assert_eq!(probe.header("retry-after"), Some("1"));
    assert!(
        probe_started.elapsed() < Duration::from_secs(1),
        "accept loop stalled behind never-reading shed clients: {:?}",
        probe_started.elapsed()
    );

    // After the wedge's deadline reaps it, normal service resumes.
    drop(wedge);
    drop(filler);
    drop(shed_clients);
    std::thread::sleep(Duration::from_millis(1700));
    let healthy = client::request(addr, "GET", "/healthz", "").expect("healthy after sheds");
    assert_eq!(healthy.status, 200);

    let text = client::request(addr, "GET", "/metrics", "")
        .expect("metrics")
        .body;
    let shed_total = reject_count(&text, "shed") + reject_count(&text, "shed_drop");
    assert!(
        shed_total >= 6,
        "expected ≥6 sheds (5 clients + probe): {text}"
    );
    // Regression (shed-path metrics pollution): sheds are rejects, not
    // zero-latency `Other` samples dragging p50 toward zero.
    assert_eq!(
        metric(&text, "em_serve_requests_total{endpoint=\"other\"}"),
        0,
        "sheds must not be counted as served `other` requests: {text}"
    );

    let bye = client::request(addr, "POST", "/shutdown", "").expect("shutdown");
    assert_eq!(bye.status, 200);
    handle.join();
}

/// Regression (shutdown self-wake on a wildcard bind): the self-wake used
/// to connect to `0.0.0.0:<port>`, which is platform-dependent and can
/// leave `run()` blocked in `accept` forever. Binding `0.0.0.0` must now
/// shut down cleanly (the wake aims at loopback).
#[test]
fn wildcard_bind_shuts_down_cleanly() {
    let server = Server::bind(
        "0.0.0.0:0",
        Schema::from_names(vec!["name"]),
        Box::new(ConstModel),
        ServerConfig {
            parallelism: ParallelismConfig::with_threads(1),
            ..Default::default()
        },
    )
    .expect("bind wildcard");
    let port = server.local_addr().port();
    let handle = server.spawn();
    let addr: SocketAddr = format!("127.0.0.1:{port}").parse().expect("loopback addr");

    let bye = client::request(addr, "POST", "/shutdown", "").expect("shutdown");
    assert_eq!(bye.status, 200);

    // Join under a watchdog: a missed wake-up means `accept` blocks
    // forever and `join` never returns.
    let joined = std::sync::Arc::new(AtomicBool::new(false));
    let flag = joined.clone();
    std::thread::spawn(move || {
        handle.join();
        flag.store(true, Ordering::SeqCst);
    });
    let waited = Instant::now();
    while !joined.load(Ordering::SeqCst) {
        assert!(
            waited.elapsed() < Duration::from_secs(10),
            "server bound to 0.0.0.0 failed to shut down: accept never woke"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Admission control: connections that outwait the queue-age bound are
/// discarded unanswered (their clients have long timed out), and fresh
/// connections afterwards are served normally.
#[test]
fn stale_queued_connections_are_discarded_unanswered() {
    let server = Server::bind(
        "127.0.0.1:0",
        Schema::from_names(vec!["name"]),
        Box::new(ConstModel),
        ServerConfig {
            parallelism: ParallelismConfig::with_threads(1),
            queue_depth: 16,
            request_timeout: Duration::from_millis(600),
            max_queue_age: Duration::from_millis(50),
            ..Default::default()
        },
    )
    .expect("bind");
    let handle = server.spawn();
    let addr = handle.addr();

    // Wedge the single worker for ~600 ms.
    let wedge = TcpStream::connect(addr).expect("wedge connect");
    std::thread::sleep(Duration::from_millis(100));

    // Three healthy requests arrive while the worker is wedged; by the
    // time it frees up they are ~500 ms old — far past the 50 ms bound.
    let outcomes: Vec<_> = std::thread::scope(|scope| {
        let clients: Vec<_> = (0..3)
            .map(|_| {
                scope.spawn(move || {
                    client::request_with_timeout(
                        addr,
                        "GET",
                        "/healthz",
                        "",
                        Duration::from_secs(5),
                    )
                })
            })
            .collect();
        clients
            .into_iter()
            .map(|c| c.join().expect("client"))
            .collect()
    });
    for outcome in &outcomes {
        assert!(
            outcome.is_err(),
            "stale connection should be dropped unanswered, got {outcome:?}"
        );
    }

    // The wedge has been reaped; a fresh request is young when popped
    // and gets served.
    drop(wedge);
    std::thread::sleep(Duration::from_millis(200));
    let fresh = client::request(addr, "GET", "/healthz", "").expect("fresh request");
    assert_eq!(fresh.status, 200);

    let text = client::request(addr, "GET", "/metrics", "")
        .expect("metrics")
        .body;
    assert_eq!(reject_count(&text, "stale_queue"), 3, "{text}");
    assert_eq!(reject_count(&text, "idle"), 1, "{text}");

    let bye = client::request(addr, "POST", "/shutdown", "").expect("shutdown");
    assert_eq!(bye.status, 200);
    handle.join();
}

/// The write half of the deadline, over real TCP: a response too large
/// for the kernel buffers of a never-reading peer must be abandoned when
/// the budget expires — the worker is freed, not held hostage. (Real
/// explanation responses are a few KB and land in the buffers whole,
/// which is why the end-to-end chaos test above cannot wedge a worker
/// this way; this pins the defence for arbitrarily large responses.)
#[test]
fn response_write_is_abandoned_when_the_peer_never_reads() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");

    let peer = TcpStream::connect(addr).expect("connect");
    let (server_side, _) = listener.accept().expect("accept");

    // 8 MiB: beyond any plausible loopback send+receive buffering.
    let response = Response::json(200, "x".repeat(8 << 20));
    let deadline = Deadline::starting_now(Duration::from_millis(500));
    let started = Instant::now();
    let err = response
        .write_to(&mut DeadlineStream::new(&server_side, deadline))
        .expect_err("writing 8 MiB to a never-reading peer must hit the deadline");
    assert!(is_timeout(&err), "expected a timeout, got {err:?}");
    let elapsed = started.elapsed();
    assert!(
        elapsed >= Duration::from_millis(400),
        "gave up before the budget was spent: {elapsed:?}"
    );
    assert!(
        elapsed < Duration::from_secs(5),
        "write was not bounded by the deadline: {elapsed:?}"
    );
    drop(peer);
}
