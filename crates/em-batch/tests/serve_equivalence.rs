//! Cross-crate byte-equality: a record's `response` field in the batch
//! output must be **byte-identical** to what `em-serve` returns over HTTP
//! for the same pair, explainer, and seed. Both paths run through
//! `em_codec::explain::run_explain_traced` and the shared
//! shortest-roundtrip JSON writer, so this holds by construction — the
//! test pins the contract across the crate boundary, including the wire.

use std::path::{Path, PathBuf};

use em_batch::{execute, plan, NoFailpoints, PlanConfig, RunMode};
use em_codec::explain::ExplainerKind;
use em_codec::json::Value;
use em_datagen::{DatasetId, MagellanBenchmark};
use em_entity::{dataset_to_csv, EmDataset};
use em_matchers::{load_logistic_file, FeatureExtractor, LogisticMatcher};
use em_par::ParallelismConfig;
use em_serve::{client, ExplainOptions, Server, ServerConfig};

const N_RECORDS: usize = 4;
const N_SAMPLES: usize = 16;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("em-batch-serve-eq-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn write_input(dir: &Path) -> PathBuf {
    let full = MagellanBenchmark::scaled(0.05).generate(DatasetId::SFz);
    let small = EmDataset::new(
        full.name(),
        full.schema().clone(),
        full.records()[..N_RECORDS].to_vec(),
    );
    let path = dir.join("input.csv");
    std::fs::write(&path, dataset_to_csv(&small)).expect("write input");
    path
}

/// Builds the `POST /explain` body that replays one batch record: same
/// pair (as recorded in the line), same explainer, same per-record seed.
fn replay_body(line: &Value, explainer: &str) -> String {
    let seed = line
        .get("seed")
        .and_then(Value::as_u64)
        .expect("seed field");
    Value::object(vec![
        ("pair", line.get("pair").expect("pair field").clone()),
        ("explainer", Value::string(explainer)),
        (
            "config",
            Value::object(vec![
                ("n_samples", N_SAMPLES.into()),
                ("seed", Value::Number(seed as f64)),
            ]),
        ),
    ])
    .to_json()
}

#[test]
fn batch_response_bytes_equal_served_response_bytes() {
    let dir = scratch("main");
    let input = write_input(&dir);
    let run_dir = dir.join("run");

    // Batch side: plan + run.
    let config = PlanConfig {
        shards: 2,
        seed: 99,
        explainer: ExplainerKind::Landmark,
        n_samples: N_SAMPLES,
        threads: 2,
    };
    let batch_plan = plan::create_plan(&input, &run_dir, &config).unwrap();
    execute(
        &run_dir,
        RunMode::Fresh,
        None,
        &NoFailpoints,
        em_obs::noop(),
    )
    .unwrap();

    // Server side: the *same* persisted model the batch run used.
    let dataset = plan::read_input(&input).unwrap();
    let schema = dataset.schema().clone();
    let model = load_logistic_file(&run_dir.join(plan::MODEL_FILE), &schema).unwrap();
    let matcher = LogisticMatcher::from_parts(FeatureExtractor::fit(&dataset), model);
    let server = Server::bind(
        "127.0.0.1:0",
        schema,
        Box::new(matcher),
        ServerConfig {
            parallelism: ParallelismConfig::serial(),
            defaults: ExplainOptions::default(),
            ..Default::default()
        },
    )
    .unwrap();
    let handle = server.spawn();
    let addr = handle.addr();

    // Replay every batch record against the server and compare bytes.
    let mut compared = 0;
    for shard in 0..batch_plan.shards {
        let text = std::fs::read_to_string(batch_plan.shard_path(&run_dir, shard)).unwrap();
        for raw_line in text.lines() {
            let line = Value::parse(raw_line).unwrap();
            // The shared writer is canonical: re-serializing the parsed
            // `response` reproduces the exact bytes the batch run wrote.
            let batch_bytes = line.get("response").unwrap().to_json();

            let served = client::request(
                addr,
                "POST",
                "/explain",
                &replay_body(&line, batch_plan.explainer.name()),
            )
            .unwrap();
            assert_eq!(served.status, 200, "{}", served.body);
            assert_eq!(
                served.body, batch_bytes,
                "served response differs from batch record (shard {shard})"
            );
            compared += 1;
        }
    }
    assert_eq!(compared, N_RECORDS);

    let bye = client::request(addr, "POST", "/shutdown", "").unwrap();
    assert_eq!(bye.status, 200);
    handle.join();
}
