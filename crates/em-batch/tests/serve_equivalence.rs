//! Cross-crate byte-equality: a record's `response` field in the batch
//! output must be **byte-identical** to what `em-serve` returns over HTTP
//! for the same pair, explainer, and seed. Both paths run through
//! `em_codec::explain::run_explain_traced` and the shared
//! shortest-roundtrip JSON writer, so this holds by construction — the
//! test pins the contract across the crate boundary, including the wire.
//!
//! The replay leg also pins seed fidelity: the `seed` recorded on each
//! batch line must be the exact `u64` the explainer consumed, even
//! though it crosses two JSON (f64) boundaries — the output line and the
//! replayed request body. `record_seed` masks derived seeds below 2^53
//! to make that hold for any base seed `plan` accepts.

use std::path::{Path, PathBuf};

use em_batch::{execute, plan, NoFailpoints, PlanConfig, RunMode};
use em_codec::explain::ExplainerKind;
use em_codec::json::Value;
use em_datagen::{DatasetId, MagellanBenchmark};
use em_entity::{dataset_to_csv, EmDataset};
use em_matchers::{load_logistic_file, FeatureExtractor, LogisticMatcher};
use em_par::ParallelismConfig;
use em_serve::{client, ExplainOptions, Server, ServerConfig};

const N_SAMPLES: usize = 16;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("em-batch-serve-eq-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn write_input(dir: &Path, n_records: usize) -> PathBuf {
    let full = MagellanBenchmark::scaled(0.05).generate(DatasetId::SFz);
    let small = EmDataset::new(
        full.name(),
        full.schema().clone(),
        full.records()[..n_records].to_vec(),
    );
    let path = dir.join("input.csv");
    std::fs::write(&path, dataset_to_csv(&small)).expect("write input");
    path
}

/// Builds the `POST /explain` body that replays one batch record: same
/// pair (as recorded in the line), same explainer, same per-record seed.
fn replay_body(line: &Value, explainer: &str) -> String {
    let seed = line
        .get("seed")
        .and_then(Value::as_u64)
        .expect("seed field");
    Value::object(vec![
        ("pair", line.get("pair").expect("pair field").clone()),
        ("explainer", Value::string(explainer)),
        (
            "config",
            Value::object(vec![
                ("n_samples", N_SAMPLES.into()),
                ("seed", Value::Number(seed as f64)),
            ]),
        ),
    ])
    .to_json()
}

/// Plans + runs a batch job, then replays every record line against a
/// live server built from the same persisted model, asserting (1) the
/// recorded seed is exactly the plan's derived seed and (2) the
/// `response` field matches the served body byte for byte.
fn assert_batch_replays_byte_identically(name: &str, base_seed: u64, n_records: usize) {
    let dir = scratch(name);
    let input = write_input(&dir, n_records);
    let run_dir = dir.join("run");

    // Batch side: plan + run.
    let config = PlanConfig {
        shards: 2,
        seed: base_seed,
        explainer: ExplainerKind::Landmark,
        n_samples: N_SAMPLES,
        threads: 2,
    };
    let batch_plan = plan::create_plan(&input, &run_dir, &config).expect("plan");
    execute(
        &run_dir,
        RunMode::Fresh,
        None,
        &NoFailpoints,
        em_obs::noop(),
    )
    .expect("run");

    // Server side: the *same* persisted model the batch run used.
    let dataset = plan::read_input(&input).expect("read input");
    let schema = dataset.schema().clone();
    let model = load_logistic_file(&run_dir.join(plan::MODEL_FILE), &schema).expect("load model");
    let matcher = LogisticMatcher::from_parts(FeatureExtractor::fit(&dataset), model);
    let server = Server::bind(
        "127.0.0.1:0",
        schema,
        Box::new(matcher),
        ServerConfig {
            parallelism: ParallelismConfig::serial(),
            defaults: ExplainOptions::default(),
            ..Default::default()
        },
    )
    .expect("bind server");
    let handle = server.spawn();
    let addr = handle.addr();

    // Replay every batch record against the server and compare bytes.
    let mut compared = 0;
    for shard in 0..batch_plan.shards {
        let text =
            std::fs::read_to_string(batch_plan.shard_path(&run_dir, shard)).expect("read shard");
        for raw_line in text.lines() {
            let line = Value::parse(raw_line).expect("parse line");
            // The recorded seed survived JSON exactly and is the seed
            // the plan derives for this record.
            let index = line.get("index").and_then(Value::as_u64).expect("index") as usize;
            let seed = line.get("seed").and_then(Value::as_u64).expect("seed");
            assert_eq!(seed, batch_plan.record_seed(index), "record {index}");
            // The shared writer is canonical: re-serializing the parsed
            // `response` reproduces the exact bytes the batch run wrote.
            let batch_bytes = line.get("response").expect("response").to_json();

            let served = client::request(
                addr,
                "POST",
                "/explain",
                &replay_body(&line, batch_plan.explainer.name()),
            )
            .expect("replay request");
            assert_eq!(served.status, 200, "{}", served.body);
            assert_eq!(
                served.body, batch_bytes,
                "served response differs from batch record (shard {shard})"
            );
            compared += 1;
        }
    }
    assert_eq!(compared, n_records);

    let bye = client::request(addr, "POST", "/shutdown", "").expect("shutdown");
    assert_eq!(bye.status, 200);
    handle.join();
}

#[test]
fn batch_response_bytes_equal_served_response_bytes() {
    assert_batch_replays_byte_identically("main", 99, 4);
}

#[test]
fn timestamp_scale_base_seed_still_replays_byte_identically() {
    // Regression (review finding): derived seeds were serialized through
    // f64 unmasked, so any base seed above ~2^22 recorded a rounded seed
    // the explainer never used and the server replay diverged. A
    // milliseconds-since-epoch base seed is the realistic worst case.
    // (4 records, like the main test: the training subset must contain
    // both label classes.)
    assert_batch_replays_byte_identically("large-seed", 1_754_600_000_000, 4);
}
