//! The crash-safety acceptance sweep: kill the pipeline at **every**
//! failpoint site on **every** shard, resume, and require the healed run
//! directory — every shard file *and* the manifest — to be byte-identical
//! to an uninterrupted reference run. Resumes run at a different thread
//! count than the reference on purpose: kill-point, shard layout, and
//! thread count must all be invisible in the output bytes.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use em_batch::hash::content_hash;
use em_batch::manifest::ManifestEntry;
use em_batch::{
    execute, manifest, plan, verify_run, BatchError, FailAt, FailSite, NoFailpoints, PlanConfig,
    RunMode,
};
use em_codec::explain::ExplainerKind;
use em_datagen::{DatasetId, MagellanBenchmark};
use em_entity::{dataset_to_csv, EmDataset};

const N_RECORDS: usize = 9;
const SHARDS: usize = 3;
const REFERENCE_THREADS: usize = 1;
const RESUME_THREADS: usize = 3;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("em-batch-resume-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn write_input(dir: &Path) -> PathBuf {
    let full = MagellanBenchmark::scaled(0.05).generate(DatasetId::SFz);
    let small = EmDataset::new(
        full.name(),
        full.schema().clone(),
        full.records()[..N_RECORDS].to_vec(),
    );
    let path = dir.join("input.csv");
    std::fs::write(&path, dataset_to_csv(&small)).expect("write input");
    path
}

fn config() -> PlanConfig {
    PlanConfig {
        shards: SHARDS,
        seed: 7,
        explainer: ExplainerKind::Landmark,
        n_samples: 16,
        threads: 1,
    }
}

/// Full byte image of a run directory's outputs: shard files + manifest.
fn snapshot(run_dir: &Path, shards: usize) -> BTreeMap<String, Vec<u8>> {
    let plan = plan::RunPlan::load(run_dir).expect("load plan");
    let mut files = BTreeMap::new();
    for shard in 0..shards {
        let path = plan.shard_path(run_dir, shard);
        files.insert(
            format!("shard-{shard}"),
            std::fs::read(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display())),
        );
    }
    files.insert(
        "manifest".to_string(),
        std::fs::read(run_dir.join(plan::MANIFEST_FILE)).expect("read manifest"),
    );
    files
}

#[test]
fn kill_at_every_site_and_shard_then_resume_is_byte_identical() {
    let dir = scratch("sweep");
    let input = write_input(&dir);

    // Uninterrupted reference run.
    let ref_dir = dir.join("reference");
    plan::create_plan(&input, &ref_dir, &config()).unwrap();
    execute(
        &ref_dir,
        RunMode::Fresh,
        Some(REFERENCE_THREADS),
        &NoFailpoints,
        em_obs::noop(),
    )
    .unwrap();
    let reference = snapshot(&ref_dir, SHARDS);

    // The manifest must contain exactly one entry per shard, in shard
    // order, with the true content hash of the shard file.
    let expected_entries: Vec<ManifestEntry> = (0..SHARDS)
        .map(|shard| ManifestEntry {
            shard,
            records: N_RECORDS / SHARDS,
            hash: content_hash(&reference[&format!("shard-{shard}")]),
        })
        .collect();
    assert_eq!(
        manifest::load_and_repair(&ref_dir.join(plan::MANIFEST_FILE)).unwrap(),
        expected_entries
    );

    for site in FailSite::all() {
        for shard in 0..SHARDS {
            let name = format!("{}-{shard}", site.name());
            let run_dir = dir.join(&name);
            plan::create_plan(&input, &run_dir, &config()).unwrap();

            // Kill.
            let killed = execute(
                &run_dir,
                RunMode::Fresh,
                Some(REFERENCE_THREADS),
                &FailAt { site, shard },
                em_obs::noop(),
            );
            match killed {
                Err(BatchError::Failpoint { site: s, shard: h }) => {
                    assert_eq!((s, h), (site, shard), "{name}");
                }
                other => panic!("{name}: expected failpoint, got {other:?}"),
            }

            // The crash state matches the commit protocol.
            let plan = plan::RunPlan::load(&run_dir).unwrap();
            let shard_file = plan.shard_path(&run_dir, shard);
            let committed = manifest::load_and_repair(&run_dir.join(plan::MANIFEST_FILE))
                .unwrap()
                .len();
            match site {
                FailSite::BeforeWrite | FailSite::BeforeRename => {
                    assert!(!shard_file.exists(), "{name}: shard visible too early");
                    assert_eq!(committed, shard, "{name}");
                }
                FailSite::BeforeManifest => {
                    assert!(shard_file.exists(), "{name}: renamed file missing");
                    assert_eq!(committed, shard, "{name}");
                }
                FailSite::AfterManifest => {
                    assert!(shard_file.exists(), "{name}");
                    assert_eq!(committed, shard + 1, "{name}");
                }
            }

            // Resume at a different thread count.
            let outcome = execute(
                &run_dir,
                RunMode::Resume,
                Some(RESUME_THREADS),
                &NoFailpoints,
                em_obs::noop(),
            )
            .unwrap_or_else(|e| panic!("{name}: resume failed: {e}"));
            let already = if site == FailSite::AfterManifest {
                shard + 1
            } else {
                shard
            };
            assert_eq!(outcome.shards_skipped, already, "{name}");
            assert_eq!(
                outcome.shards_run,
                (already..SHARDS).collect::<Vec<_>>(),
                "{name}"
            );

            // Byte identity of the whole run directory output set.
            assert_eq!(snapshot(&run_dir, SHARDS), reference, "{name}");
            assert!(verify_run(&run_dir).unwrap().is_complete_and_ok(), "{name}");
        }
    }
}

#[test]
fn double_kill_then_resume_still_converges() {
    // Crash once mid-run, resume into a second crash later, resume again:
    // the directory must still converge to the reference bytes.
    let dir = scratch("double");
    let input = write_input(&dir);

    let ref_dir = dir.join("reference");
    plan::create_plan(&input, &ref_dir, &config()).unwrap();
    execute(
        &ref_dir,
        RunMode::Fresh,
        Some(1),
        &NoFailpoints,
        em_obs::noop(),
    )
    .unwrap();
    let reference = snapshot(&ref_dir, SHARDS);

    let run_dir = dir.join("crashy");
    plan::create_plan(&input, &run_dir, &config()).unwrap();
    let first = execute(
        &run_dir,
        RunMode::Fresh,
        Some(2),
        &FailAt {
            site: FailSite::BeforeRename,
            shard: 0,
        },
        em_obs::noop(),
    );
    assert!(matches!(first, Err(BatchError::Failpoint { .. })));
    let second = execute(
        &run_dir,
        RunMode::Resume,
        Some(1),
        &FailAt {
            site: FailSite::BeforeManifest,
            shard: 2,
        },
        em_obs::noop(),
    );
    assert!(matches!(second, Err(BatchError::Failpoint { .. })));
    execute(
        &run_dir,
        RunMode::Resume,
        Some(3),
        &NoFailpoints,
        em_obs::noop(),
    )
    .unwrap();

    assert_eq!(snapshot(&run_dir, SHARDS), reference);
    assert!(verify_run(&run_dir).unwrap().is_complete_and_ok());
}

#[test]
fn torn_manifest_tail_heals_to_reference_bytes() {
    // Simulate a crash *during* the manifest append itself: truncate the
    // last entry mid-line, then resume.
    let dir = scratch("torn");
    let input = write_input(&dir);

    let ref_dir = dir.join("reference");
    plan::create_plan(&input, &ref_dir, &config()).unwrap();
    execute(
        &ref_dir,
        RunMode::Fresh,
        Some(1),
        &NoFailpoints,
        em_obs::noop(),
    )
    .unwrap();
    let reference = snapshot(&ref_dir, SHARDS);

    let run_dir = dir.join("crashy");
    plan::create_plan(&input, &run_dir, &config()).unwrap();
    let killed = execute(
        &run_dir,
        RunMode::Fresh,
        Some(1),
        &FailAt {
            site: FailSite::AfterManifest,
            shard: 1,
        },
        em_obs::noop(),
    );
    assert!(matches!(killed, Err(BatchError::Failpoint { .. })));
    // Tear the final manifest line.
    let manifest_path = run_dir.join(plan::MANIFEST_FILE);
    let bytes = std::fs::read(&manifest_path).unwrap();
    std::fs::write(&manifest_path, &bytes[..bytes.len() - 7]).unwrap();

    execute(
        &run_dir,
        RunMode::Resume,
        Some(2),
        &NoFailpoints,
        em_obs::noop(),
    )
    .unwrap();
    assert_eq!(snapshot(&run_dir, SHARDS), reference);
}
