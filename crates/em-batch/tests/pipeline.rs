//! End-to-end pipeline tests: plan → run → verify on a real (synthetic)
//! dataset, plus the two output-invariance claims — byte-identical
//! concatenated output at any thread count and any shard count.

use std::path::{Path, PathBuf};

use em_batch::{execute, plan, verify_run, BatchError, NoFailpoints, PlanConfig, RunMode};
use em_codec::explain::ExplainerKind;
use em_codec::json::Value;
use em_datagen::{DatasetId, MagellanBenchmark};
use em_entity::{dataset_to_csv, EmDataset};

const N_RECORDS: usize = 10;
const N_SAMPLES: usize = 16;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("em-batch-pipeline-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// A small real input: the first records of a generated benchmark set.
fn write_input(dir: &Path) -> PathBuf {
    let full = MagellanBenchmark::scaled(0.05).generate(DatasetId::SFz);
    let small = EmDataset::new(
        full.name(),
        full.schema().clone(),
        full.records()[..N_RECORDS].to_vec(),
    );
    let path = dir.join("input.csv");
    std::fs::write(&path, dataset_to_csv(&small)).expect("write input");
    path
}

fn config(shards: usize) -> PlanConfig {
    PlanConfig {
        shards,
        seed: 42,
        explainer: ExplainerKind::Landmark,
        n_samples: N_SAMPLES,
        threads: 1,
    }
}

/// Plans and runs to completion (including the summary, as the CLI
/// does); returns the concatenated shard bytes.
fn run_to_completion(input: &Path, run_dir: &Path, shards: usize, threads: usize) -> Vec<u8> {
    let plan = plan::create_plan(input, run_dir, &config(shards)).expect("plan");
    let collector = em_obs::Collector::new();
    let outcome = execute(
        run_dir,
        RunMode::Fresh,
        Some(threads),
        &NoFailpoints,
        &collector,
    )
    .expect("run");
    em_batch::summary::write_summary(run_dir, &plan, &outcome, &collector).expect("summary");
    assert_eq!(outcome.shards_run, (0..shards).collect::<Vec<_>>());
    assert_eq!(outcome.records_explained, N_RECORDS);
    let mut bytes = Vec::new();
    for shard in 0..shards {
        bytes.extend(std::fs::read(plan.shard_path(run_dir, shard)).expect("read shard"));
    }
    bytes
}

#[test]
fn full_run_produces_verified_wellformed_output() {
    let dir = scratch("full");
    let input = write_input(&dir);
    let run_dir = dir.join("run");
    let bytes = run_to_completion(&input, &run_dir, 3, 2);

    // Every line is a well-formed record with a served-shape response.
    let text = String::from_utf8(bytes).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), N_RECORDS);
    for (i, line) in lines.iter().enumerate() {
        let v = Value::parse(line).unwrap();
        assert_eq!(v.get("index").and_then(Value::as_u64), Some(i as u64));
        assert!(v.get("label").and_then(Value::as_bool).is_some());
        let response = v.get("response").unwrap();
        assert_eq!(
            response.get("explainer").and_then(Value::as_str),
            Some("landmark")
        );
        let views = response
            .get("explanations")
            .and_then(Value::as_array)
            .unwrap();
        assert_eq!(views.len(), 2, "landmark returns both views");
    }

    let report = verify_run(&run_dir).unwrap();
    assert!(report.is_complete_and_ok(), "{report:?}");
    assert_eq!(report.shards_ok, 3);

    // The run wrote a summary with the em-obs stage table.
    let summary =
        Value::parse(&std::fs::read_to_string(run_dir.join("summary.json")).unwrap()).unwrap();
    assert_eq!(
        summary.get("records_explained").and_then(Value::as_u64),
        Some(N_RECORDS as u64)
    );
    assert_eq!(
        summary
            .get("stages")
            .and_then(Value::as_array)
            .map(<[Value]>::len),
        Some(em_obs::N_STAGES)
    );
}

#[test]
fn output_is_byte_identical_across_thread_counts() {
    let dir = scratch("threads");
    let input = write_input(&dir);
    let serial = run_to_completion(&input, &dir.join("t1"), 3, 1);
    let parallel = run_to_completion(&input, &dir.join("t4"), 3, 4);
    assert_eq!(serial, parallel);
}

#[test]
fn concatenated_output_is_byte_identical_across_shard_counts() {
    let dir = scratch("shards");
    let input = write_input(&dir);
    let two = run_to_completion(&input, &dir.join("s2"), 2, 2);
    let five = run_to_completion(&input, &dir.join("s5"), 5, 2);
    assert_eq!(two, five);
}

#[test]
fn fresh_run_refuses_a_started_directory() {
    let dir = scratch("refuse");
    let input = write_input(&dir);
    let run_dir = dir.join("run");
    run_to_completion(&input, &run_dir, 2, 1);
    assert!(matches!(
        execute(
            &run_dir,
            RunMode::Fresh,
            None,
            &NoFailpoints,
            em_obs::noop()
        ),
        Err(BatchError::Plan(_))
    ));
    // Resume on a complete run is a no-op, not an error.
    let outcome = execute(
        &run_dir,
        RunMode::Resume,
        None,
        &NoFailpoints,
        em_obs::noop(),
    )
    .unwrap();
    assert!(outcome.shards_run.is_empty());
    assert_eq!(outcome.shards_skipped, 2);
}

#[test]
fn changed_input_is_detected_before_any_work() {
    let dir = scratch("input-changed");
    let input = write_input(&dir);
    let run_dir = dir.join("run");
    plan::create_plan(&input, &run_dir, &config(2)).unwrap();
    let mut text = std::fs::read_to_string(&input).unwrap();
    text.push_str("1,tampered,x,tampered,x,tampered,x,tampered,x\n");
    std::fs::write(&input, text).unwrap();
    assert!(matches!(
        execute(
            &run_dir,
            RunMode::Fresh,
            None,
            &NoFailpoints,
            em_obs::noop()
        ),
        Err(BatchError::InputChanged { .. })
    ));
}

#[test]
fn concurrent_execute_on_one_run_directory_is_rejected() {
    let dir = scratch("locked");
    let input = write_input(&dir);
    let run_dir = dir.join("run");
    plan::create_plan(&input, &run_dir, &config(2)).unwrap();
    // Hold the run lock the way a concurrent process would: flock
    // conflicts across file descriptions, including within one process.
    let lock = std::fs::OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(false)
        .open(run_dir.join(plan::LOCK_FILE))
        .unwrap();
    lock.lock().unwrap();
    assert!(matches!(
        execute(
            &run_dir,
            RunMode::Fresh,
            None,
            &NoFailpoints,
            em_obs::noop()
        ),
        Err(BatchError::Locked { .. })
    ));
    // Releasing the lock unblocks the run.
    drop(lock);
    execute(
        &run_dir,
        RunMode::Fresh,
        None,
        &NoFailpoints,
        em_obs::noop(),
    )
    .unwrap();
    assert!(verify_run(&run_dir).unwrap().is_complete_and_ok());
}

#[test]
fn verify_reports_a_torn_manifest_tail_without_repairing_it() {
    let dir = scratch("verify-torn");
    let input = write_input(&dir);
    let run_dir = dir.join("run");
    run_to_completion(&input, &run_dir, 2, 1);
    let manifest_path = run_dir.join(plan::MANIFEST_FILE);
    let mut bytes = std::fs::read(&manifest_path).unwrap();
    bytes.extend_from_slice(b"{\"shard\":2,\"rec");
    std::fs::write(&manifest_path, &bytes).unwrap();

    let report = verify_run(&run_dir).unwrap();
    assert_eq!(report.shards_ok, 2);
    assert!(report.problems.is_empty(), "{report:?}");
    assert_eq!(report.torn_manifest_bytes, 15);
    assert!(!report.is_complete_and_ok());
    // verify is read-only: the torn bytes remain for resume to heal.
    assert_eq!(std::fs::read(&manifest_path).unwrap(), bytes);
}

#[test]
fn verify_flags_a_corrupted_shard() {
    let dir = scratch("corrupt");
    let input = write_input(&dir);
    let run_dir = dir.join("run");
    run_to_completion(&input, &run_dir, 2, 1);
    let plan = plan::RunPlan::load(&run_dir).unwrap();
    let victim = plan.shard_path(&run_dir, 1);
    let mut bytes = std::fs::read(&victim).unwrap();
    bytes[0] ^= 1;
    std::fs::write(&victim, bytes).unwrap();
    let report = verify_run(&run_dir).unwrap();
    assert_eq!(report.shards_ok, 1);
    assert_eq!(report.problems.len(), 1);
    assert!(report.problems[0].contains("hash"), "{report:?}");
}
