//! `em-batch gen`: synthetic Magellan-style input files.
//!
//! Writes one of the `em-datagen` benchmark datasets as a CSV in the
//! layout `plan` reads, so the CI smoke job and the README walkthrough
//! need no external data. Generation is fully seeded by the dataset
//! definition — the same `(dataset, scale)` always produces the same
//! bytes.

use std::path::Path;

use em_datagen::{DatasetId, MagellanBenchmark};
use em_entity::dataset_to_csv;

use crate::atomic;
use crate::error::BatchError;

/// Parses a dataset short name (e.g. `S-FZ`), case-insensitively.
pub fn parse_dataset_id(name: &str) -> Option<DatasetId> {
    DatasetId::all()
        .into_iter()
        .find(|id| id.short_name().eq_ignore_ascii_case(name))
}

/// The short names `gen --dataset` accepts, for usage messages.
pub fn dataset_names() -> Vec<&'static str> {
    DatasetId::all()
        .into_iter()
        .map(DatasetId::short_name)
        .collect()
}

/// Generates `dataset` at `scale` and writes it to `out` as CSV.
/// Returns the number of records written.
pub fn generate_csv(dataset: DatasetId, scale: f64, out: &Path) -> Result<usize, BatchError> {
    let generated = MagellanBenchmark::scaled(scale).generate(dataset);
    let csv = dataset_to_csv(&generated);
    atomic::write_atomic(out, csv.as_bytes()).map_err(|e| BatchError::io(out, e))?;
    Ok(generated.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_names_parse_case_insensitively() {
        for id in DatasetId::all() {
            assert_eq!(parse_dataset_id(id.short_name()), Some(id));
            assert_eq!(parse_dataset_id(&id.short_name().to_lowercase()), Some(id));
        }
        assert_eq!(parse_dataset_id("nope"), None);
    }

    #[test]
    fn generated_csv_roundtrips_through_the_importer() {
        let dir = std::env::temp_dir().join("em-batch-gen-test");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("data.csv");
        let id = DatasetId::all()[0];
        let n = generate_csv(id, 0.02, &out).unwrap();
        assert!(n > 0);
        let back = crate::plan::read_input(&out).unwrap();
        assert_eq!(back.len(), n);
    }

    #[test]
    fn generation_is_deterministic() {
        let dir = std::env::temp_dir().join("em-batch-gen-det");
        std::fs::create_dir_all(&dir).unwrap();
        let (a, b) = (dir.join("a.csv"), dir.join("b.csv"));
        let id = DatasetId::all()[0];
        generate_csv(id, 0.02, &a).unwrap();
        generate_csv(id, 0.02, &b).unwrap();
        assert_eq!(std::fs::read(&a).unwrap(), std::fs::read(&b).unwrap());
    }
}
