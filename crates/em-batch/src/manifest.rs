//! Append-only, crash-safe completion manifest.
//!
//! One JSON line per committed shard: `{"shard":N,"records":N,"hash":…}`.
//! An entry is appended (and fsynced) only *after* the shard file is
//! atomically in place, so manifest-says-done implies file-is-complete.
//! The converse doesn't hold — a crash between rename and append leaves a
//! complete shard file with no entry — and resume handles that by simply
//! recomputing the shard, which rewrites identical bytes.
//!
//! Crash tolerance on load: a torn final line (the only kind of tear an
//! append-only file can have) is detected, and — on the run/resume path
//! ([`load_and_repair`]) — **truncated away** before the run continues,
//! so a resumed manifest ends up byte-identical to an uninterrupted one.
//! [`load`] is the strictly read-only variant: it reports the torn tail
//! instead of healing it, which is what `em-batch verify` uses so that
//! auditing a crashed run directory never mutates it. A torn line
//! anywhere else, or two entries for the same shard that disagree, means
//! outside interference and is a hard error.

use std::io::Write;
use std::path::Path;

use em_codec::json::Value;

use crate::error::BatchError;

/// One committed shard, as recorded in the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Shard id.
    pub shard: usize,
    /// Number of record lines in the shard file.
    pub records: usize,
    /// Content hash of the shard file bytes (`fnv1a64:…`).
    pub hash: String,
}

impl ManifestEntry {
    /// The manifest line for this entry, newline-terminated.
    pub fn to_line(&self) -> String {
        let mut line = Value::object(vec![
            ("shard", self.shard.into()),
            ("records", self.records.into()),
            ("hash", Value::string(self.hash.as_str())),
        ])
        .to_json();
        line.push('\n');
        line
    }

    /// Parses one manifest line.
    pub fn parse(line: &str) -> Option<ManifestEntry> {
        let root = Value::parse(line).ok()?;
        Some(ManifestEntry {
            shard: root.get("shard")?.as_u64()? as usize,
            records: root.get("records")?.as_u64()? as usize,
            hash: root.get("hash")?.as_str()?.to_string(),
        })
    }
}

/// A manifest as read straight off disk, before any repair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadedManifest {
    /// Complete, parsed entries in file order.
    pub entries: Vec<ManifestEntry>,
    /// Byte length of the valid prefix (every complete line).
    pub valid_bytes: usize,
    /// Trailing bytes of a torn final append after the valid prefix —
    /// `0` for a clean file. A torn tail is the expected artifact of a
    /// crash mid-append, not corruption.
    pub torn_bytes: usize,
}

/// Reads the manifest without touching the file (a torn final line is
/// reported, not truncated).
///
/// Returns the entries in file order. A missing file is an empty
/// manifest. Identical duplicate entries collapse to one; conflicting
/// duplicates are a [`BatchError::Manifest`].
pub fn load(path: &Path) -> Result<LoadedManifest, BatchError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(LoadedManifest {
                entries: Vec::new(),
                valid_bytes: 0,
                torn_bytes: 0,
            })
        }
        Err(e) => return Err(BatchError::io(path, e)),
    };
    let text = String::from_utf8_lossy(&bytes);
    let mut entries: Vec<ManifestEntry> = Vec::new();
    let mut keep_bytes = 0usize;
    let mut offset = 0usize;
    for piece in text.split_inclusive('\n') {
        let complete = piece.ends_with('\n');
        match ManifestEntry::parse(piece.trim_end_matches(['\n', '\r'])) {
            Some(entry) if complete => {
                if let Some(prev) = entries.iter().find(|e| e.shard == entry.shard) {
                    if *prev != entry {
                        return Err(BatchError::Manifest(format!(
                            "conflicting entries for shard {}",
                            entry.shard
                        )));
                    }
                    // Identical duplicate: tolerated on load, but keep the
                    // file as-is; the runner never produces one.
                } else {
                    entries.push(entry);
                }
                offset += piece.len();
                keep_bytes = offset;
            }
            _ if !complete => {
                // Torn final append: stop here and report it;
                // `load_and_repair` truncates it so a healed manifest
                // matches an uninterrupted run byte for byte.
                break;
            }
            _ => {
                return Err(BatchError::Manifest(format!(
                    "unparseable entry at byte {offset}: {:?}",
                    piece.trim_end()
                )));
            }
        }
    }
    Ok(LoadedManifest {
        entries,
        valid_bytes: keep_bytes,
        torn_bytes: bytes.len() - keep_bytes,
    })
}

/// Loads the manifest, repairing a torn final line by truncating it (the
/// run/resume path; `verify` uses the read-only [`load`] instead).
pub fn load_and_repair(path: &Path) -> Result<Vec<ManifestEntry>, BatchError> {
    let loaded = load(path)?;
    if loaded.torn_bytes > 0 {
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| BatchError::io(path, e))?;
        file.set_len(loaded.valid_bytes as u64)
            .map_err(|e| BatchError::io(path, e))?;
        file.sync_all().map_err(|e| BatchError::io(path, e))?;
    }
    Ok(loaded.entries)
}

/// Appends one entry durably: write, flush, fsync. After this returns the
/// shard's completion survives any crash.
pub fn append(path: &Path, entry: &ManifestEntry) -> Result<(), BatchError> {
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| BatchError::io(path, e))?;
    file.write_all(entry.to_line().as_bytes())
        .map_err(|e| BatchError::io(path, e))?;
    file.flush().map_err(|e| BatchError::io(path, e))?;
    file.sync_all().map_err(|e| BatchError::io(path, e))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("em-batch-manifest-{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("manifest.jsonl")
    }

    fn entry(shard: usize) -> ManifestEntry {
        ManifestEntry {
            shard,
            records: 10 + shard,
            hash: format!("fnv1a64:{shard:016x}"),
        }
    }

    #[test]
    fn lines_roundtrip() {
        let e = entry(3);
        assert_eq!(ManifestEntry::parse(e.to_line().trim_end()), Some(e));
    }

    #[test]
    fn missing_file_is_empty() {
        let path = scratch("missing");
        assert_eq!(load_and_repair(&path).unwrap(), Vec::new());
    }

    #[test]
    fn append_then_load_preserves_order() {
        let path = scratch("order");
        for s in 0..3 {
            append(&path, &entry(s)).unwrap();
        }
        let loaded = load_and_repair(&path).unwrap();
        assert_eq!(loaded, vec![entry(0), entry(1), entry(2)]);
    }

    #[test]
    fn torn_final_line_is_truncated_away() {
        let path = scratch("torn");
        append(&path, &entry(0)).unwrap();
        let full = std::fs::read(&path).unwrap();
        let mut torn = full.clone();
        torn.extend_from_slice(&entry(1).to_line().as_bytes()[..9]);
        std::fs::write(&path, &torn).unwrap();

        assert_eq!(load_and_repair(&path).unwrap(), vec![entry(0)]);
        // The repair physically removed the torn bytes.
        assert_eq!(std::fs::read(&path).unwrap(), full);
    }

    #[test]
    fn load_reports_a_torn_tail_without_mutating_the_file() {
        let path = scratch("readonly");
        append(&path, &entry(0)).unwrap();
        let clean_len = std::fs::metadata(&path).unwrap().len() as usize;
        let mut torn = std::fs::read(&path).unwrap();
        torn.extend_from_slice(&entry(1).to_line().as_bytes()[..9]);
        std::fs::write(&path, &torn).unwrap();

        let loaded = load(&path).unwrap();
        assert_eq!(loaded.entries, vec![entry(0)]);
        assert_eq!(loaded.valid_bytes, clean_len);
        assert_eq!(loaded.torn_bytes, 9);
        // Strictly read-only: the torn bytes are still on disk.
        assert_eq!(std::fs::read(&path).unwrap(), torn);
    }

    #[test]
    fn torn_line_then_reappend_matches_uninterrupted_bytes() {
        let uninterrupted = scratch("ref");
        append(&uninterrupted, &entry(0)).unwrap();
        append(&uninterrupted, &entry(1)).unwrap();

        let crashed = scratch("crashed");
        append(&crashed, &entry(0)).unwrap();
        let mut bytes = std::fs::read(&crashed).unwrap();
        bytes.extend_from_slice(&entry(1).to_line().as_bytes()[..5]);
        std::fs::write(&crashed, &bytes).unwrap();
        let _ = load_and_repair(&crashed).unwrap();
        append(&crashed, &entry(1)).unwrap();

        assert_eq!(
            std::fs::read(&crashed).unwrap(),
            std::fs::read(&uninterrupted).unwrap()
        );
    }

    #[test]
    fn conflicting_duplicate_is_an_error() {
        let path = scratch("conflict");
        append(&path, &entry(0)).unwrap();
        let mut other = entry(0);
        other.hash = "fnv1a64:ffffffffffffffff".into();
        append(&path, &other).unwrap();
        assert!(matches!(
            load_and_repair(&path),
            Err(BatchError::Manifest(_))
        ));
    }

    #[test]
    fn garbage_in_the_middle_is_an_error() {
        let path = scratch("garbage");
        append(&path, &entry(0)).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(b"not json\n");
        std::fs::write(&path, &bytes).unwrap();
        append(&path, &entry(1)).unwrap();
        assert!(matches!(
            load_and_repair(&path),
            Err(BatchError::Manifest(_))
        ));
    }
}
