//! FNV-1a 64-bit content hashing.
//!
//! The manifest records a content hash per committed shard file so
//! `em-batch verify` can detect truncated, edited, or misrenamed outputs.
//! FNV-1a is not collision-resistant against adversaries — it is an
//! integrity check for a pipeline that owns its own files, chosen because
//! it is fully specified in a dozen lines and needs no dependency. Hashes
//! render as `fnv1a64:<16 hex digits>` so a future algorithm change is
//! self-describing. The hasher itself lives in `em-codec` (shared with
//! the serving cache's shard pick and `em-route`'s ring placement); this
//! module re-exports it and adds the manifest text form.

pub use em_codec::hash::{fnv1a64, Fnv1a64};

/// Renders a hash in the manifest's self-describing text form.
pub fn format_hash(hash: u64) -> String {
    format!("fnv1a64:{hash:016x}")
}

/// One-shot hash of a byte slice in manifest text form.
pub fn content_hash(bytes: &[u8]) -> String {
    format_hash(fnv1a64(bytes))
}

/// Streams a file through the hasher without loading it whole.
pub fn hash_file(path: &std::path::Path) -> std::io::Result<String> {
    use std::io::Read;
    let mut file = std::fs::File::open(path)?;
    let mut hasher = Fnv1a64::new();
    let mut buf = [0u8; 8192];
    loop {
        let n = file.read(&mut buf)?;
        if n == 0 {
            break;
        }
        hasher.update(&buf[..n]);
    }
    Ok(format_hash(hasher.finish()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_fnv1a_vectors() {
        // Reference values from the FNV specification.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let mut h = Fnv1a64::new();
        h.update(b"foo");
        h.update(b"bar");
        assert_eq!(h.finish(), fnv1a64(b"foobar"));
    }

    #[test]
    fn text_form_is_prefixed_hex() {
        assert_eq!(content_hash(b""), "fnv1a64:cbf29ce484222325");
    }

    #[test]
    fn hash_file_streams_identically() {
        let dir = std::env::temp_dir().join("em-batch-hash-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("f.bin");
        std::fs::write(&path, b"foobar").unwrap();
        assert_eq!(hash_file(&path).unwrap(), content_hash(b"foobar"));
    }
}
