//! Injectable failpoints for crash-safety testing.
//!
//! The commit protocol for one shard has four externally observable
//! states, separated by the three durable operations (tmp write, rename,
//! manifest append). A [`FailpointHook`] lets tests and the CI smoke job
//! crash the pipeline in each state; the kill/resume sweep then proves
//! that resuming from every state reproduces the uninterrupted run byte
//! for byte. Production runs use [`NoFailpoints`], which the optimizer
//! erases.

/// The four sites in the shard commit protocol where a crash leaves a
/// distinct on-disk state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailSite {
    /// Shard bytes computed, nothing written: tmp file absent.
    BeforeWrite,
    /// Tmp file written and synced, not yet renamed into place.
    BeforeRename,
    /// Shard file in place, manifest entry not yet appended.
    BeforeManifest,
    /// Manifest entry durable; the shard is fully committed.
    AfterManifest,
}

/// Number of distinct failpoint sites.
pub const N_SITES: usize = 4;

impl FailSite {
    /// All sites, in commit-protocol order — the kill/resume sweep
    /// iterates this.
    pub const fn all() -> [FailSite; N_SITES] {
        [
            FailSite::BeforeWrite,
            FailSite::BeforeRename,
            FailSite::BeforeManifest,
            FailSite::AfterManifest,
        ]
    }

    /// The CLI spelling of the site.
    pub const fn name(self) -> &'static str {
        match self {
            FailSite::BeforeWrite => "before-write",
            FailSite::BeforeRename => "before-rename",
            FailSite::BeforeManifest => "before-manifest",
            FailSite::AfterManifest => "after-manifest",
        }
    }

    /// Parses the CLI spelling.
    pub fn parse(s: &str) -> Option<FailSite> {
        FailSite::all().into_iter().find(|site| site.name() == s)
    }
}

/// Decides, at each commit-protocol site, whether the pipeline should
/// crash. Implementations must be deterministic for the sweep's
/// byte-identity assertions to make sense.
pub trait FailpointHook: Sync {
    /// Returns `true` to make the runner abort with
    /// [`BatchError::Failpoint`](crate::BatchError::Failpoint) at `site`
    /// while committing `shard`.
    fn should_fail(&self, site: FailSite, shard: usize) -> bool;
}

/// The production hook: never fires.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFailpoints;

impl FailpointHook for NoFailpoints {
    fn should_fail(&self, _site: FailSite, _shard: usize) -> bool {
        false
    }
}

/// Fires once at an exact `(site, shard)` — what `--failpoint` injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailAt {
    /// The commit-protocol site to crash at.
    pub site: FailSite,
    /// The shard whose commit crashes.
    pub shard: usize,
}

impl FailAt {
    /// Parses the CLI spec `<site>:<shard>`, e.g. `before-rename:2`.
    pub fn parse(spec: &str) -> Option<FailAt> {
        let (site, shard) = spec.split_once(':')?;
        Some(FailAt {
            site: FailSite::parse(site)?,
            shard: shard.parse().ok()?,
        })
    }
}

impl FailpointHook for FailAt {
    fn should_fail(&self, site: FailSite, shard: usize) -> bool {
        self.site == site && self.shard == shard
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_roundtrip_through_parse() {
        for site in FailSite::all() {
            let spec = format!("{}:7", site.name());
            assert_eq!(FailAt::parse(&spec), Some(FailAt { site, shard: 7 }));
        }
    }

    #[test]
    fn bad_specs_are_rejected() {
        for bad in ["", "before-write", "nowhere:1", "before-write:x", ":3"] {
            assert_eq!(FailAt::parse(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn fail_at_fires_only_on_its_exact_site_and_shard() {
        let fp = FailAt {
            site: FailSite::BeforeRename,
            shard: 2,
        };
        assert!(fp.should_fail(FailSite::BeforeRename, 2));
        assert!(!fp.should_fail(FailSite::BeforeRename, 3));
        assert!(!fp.should_fail(FailSite::BeforeWrite, 2));
        assert!(!NoFailpoints.should_fail(FailSite::BeforeRename, 2));
    }
}
