//! `em-batch` CLI: plan / run / resume / verify / gen.
//!
//! Exit codes: `0` success, `1` usage error, `2` runtime or verification
//! failure, `3` injected failpoint fired (so the CI kill/resume smoke job
//! can tell a deliberate crash from a real one). Failpoints come from
//! `--failpoint <site>:<shard>` or the `EM_BATCH_FAILPOINT` environment
//! variable (the flag wins).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use em_batch::{
    execute, gen, plan, summary, verify_run, BatchError, FailAt, FailpointHook, NoFailpoints,
    PlanConfig, RunMode,
};
use em_codec::explain::ExplainerKind;
use em_obs::Collector;

const USAGE: &str = "\
usage: em-batch <command> [options]

commands:
  gen     --out <file> [--dataset <name>] [--scale <f>]
          write a synthetic Magellan-style CSV
  plan    --input <csv> --run <dir> [--shards <n>] [--seed <n>]
          [--explainer <name>] [--n-samples <n>] [--threads <n>]
          fix shard layout, train + persist the matcher, write plan.json
  run     --run <dir> [--threads <n>] [--failpoint <site>:<shard>]
          execute every shard of a fresh planned run
  resume  --run <dir> [--threads <n>] [--failpoint <site>:<shard>]
          skip committed shards, recompute the rest
  verify  --run <dir>
          audit shard files against the manifest

explainers: landmark, landmark-single, landmark-double, lime, mojito-copy
failpoint sites: before-write, before-rename, before-manifest, after-manifest";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("em-batch: error: {e}");
            ExitCode::from(e.exit_code() as u8)
        }
    }
}

/// A parsed `--flag value` option list.
struct Options {
    flags: Vec<(String, String)>,
}

impl Options {
    fn parse(args: &[String]) -> Result<Options, String> {
        let mut flags = Vec::new();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let Some(name) = flag.strip_prefix("--") else {
                return Err(format!("unexpected argument {flag:?}"));
            };
            let Some(value) = it.next() else {
                return Err(format!("--{name} requires a value"));
            };
            flags.push((name.to_string(), value.clone()));
        }
        Ok(Options { flags })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name)
            .ok_or_else(|| format!("--{name} is required"))
    }

    fn parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("bad value for --{name}: {v:?}")),
        }
    }

    fn reject_unknown(&self, known: &[&str]) -> Result<(), String> {
        for (name, _) in &self.flags {
            if !known.contains(&name.as_str()) {
                return Err(format!("unknown option --{name}"));
            }
        }
        Ok(())
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("em-batch: {msg}\n\n{USAGE}");
    ExitCode::from(1)
}

fn dispatch(args: &[String]) -> Result<ExitCode, BatchError> {
    let Some((command, rest)) = args.split_first() else {
        return Ok(usage_error("missing command"));
    };
    let opts = match Options::parse(rest) {
        Ok(o) => o,
        Err(msg) => return Ok(usage_error(&msg)),
    };
    match command.as_str() {
        "gen" => cmd_gen(&opts),
        "plan" => cmd_plan(&opts),
        "run" => cmd_execute(&opts, RunMode::Fresh),
        "resume" => cmd_execute(&opts, RunMode::Resume),
        "verify" => cmd_verify(&opts),
        other => Ok(usage_error(&format!("unknown command {other:?}"))),
    }
}

fn cmd_gen(opts: &Options) -> Result<ExitCode, BatchError> {
    let parsed = (|| -> Result<_, String> {
        opts.reject_unknown(&["out", "dataset", "scale"])?;
        let out = PathBuf::from(opts.require("out")?);
        let name = opts.get("dataset").unwrap_or("S-FZ").to_string();
        let scale = opts.parsed("scale", 0.05f64)?;
        Ok((out, name, scale))
    })();
    let (out, name, scale) = match parsed {
        Ok(p) => p,
        Err(msg) => return Ok(usage_error(&msg)),
    };
    let Some(dataset) = gen::parse_dataset_id(&name) else {
        return Ok(usage_error(&format!(
            "unknown dataset {name:?} (expected one of {})",
            gen::dataset_names().join(", ")
        )));
    };
    let records = gen::generate_csv(dataset, scale, &out)?;
    println!("em-batch: wrote {records} records to {}", out.display());
    Ok(ExitCode::SUCCESS)
}

fn cmd_plan(opts: &Options) -> Result<ExitCode, BatchError> {
    let parsed = (|| -> Result<_, String> {
        opts.reject_unknown(&[
            "input",
            "run",
            "shards",
            "seed",
            "explainer",
            "n-samples",
            "threads",
        ])?;
        let input = PathBuf::from(opts.require("input")?);
        let run_dir = PathBuf::from(opts.require("run")?);
        let defaults = PlanConfig::default();
        let explainer_name = opts.get("explainer").unwrap_or("landmark");
        let explainer = ExplainerKind::parse(explainer_name)
            .ok_or_else(|| format!("unknown explainer {explainer_name:?}"))?;
        let config = PlanConfig {
            shards: opts.parsed("shards", defaults.shards)?,
            seed: opts.parsed("seed", defaults.seed)?,
            explainer,
            n_samples: opts.parsed("n-samples", defaults.n_samples)?,
            threads: opts.parsed("threads", defaults.threads)?,
        };
        Ok((input, run_dir, config))
    })();
    let (input, run_dir, config) = match parsed {
        Ok(p) => p,
        Err(msg) => return Ok(usage_error(&msg)),
    };
    let plan = plan::create_plan(&input, &run_dir, &config)?;
    println!(
        "em-batch: planned {} records into {} shard(s) at {} (explainer {}, seed {})",
        plan.records,
        plan.shards,
        run_dir.display(),
        plan.explainer.name(),
        plan.seed
    );
    Ok(ExitCode::SUCCESS)
}

fn failpoint_hook(opts: &Options) -> Result<Box<dyn FailpointHook>, String> {
    let spec = match opts.get("failpoint") {
        Some(s) => Some(s.to_string()),
        None => std::env::var("EM_BATCH_FAILPOINT").ok(),
    };
    match spec {
        None => Ok(Box::new(NoFailpoints)),
        Some(s) => match FailAt::parse(&s) {
            Some(fp) => Ok(Box::new(fp)),
            None => Err(format!(
                "bad failpoint spec {s:?} (expected <site>:<shard>)"
            )),
        },
    }
}

fn cmd_execute(opts: &Options, mode: RunMode) -> Result<ExitCode, BatchError> {
    let parsed = (|| -> Result<_, String> {
        opts.reject_unknown(&["run", "threads", "failpoint"])?;
        let run_dir = PathBuf::from(opts.require("run")?);
        let threads = match opts.get("threads") {
            None => None,
            Some(v) => Some(
                v.parse()
                    .map_err(|_| format!("bad value for --threads: {v:?}"))?,
            ),
        };
        let hook = failpoint_hook(opts)?;
        Ok((run_dir, threads, hook))
    })();
    let (run_dir, threads, hook) = match parsed {
        Ok(p) => p,
        Err(msg) => return Ok(usage_error(&msg)),
    };
    let collector = Collector::new();
    let outcome = execute(&run_dir, mode, threads, hook.as_ref(), &collector)?;
    let plan = plan::RunPlan::load(&run_dir)?;
    summary::write_summary(&run_dir, &plan, &outcome, &collector)?;
    println!(
        "em-batch: {} shard(s) run, {} skipped, {} records explained; summary at {}",
        outcome.shards_run.len(),
        outcome.shards_skipped,
        outcome.records_explained,
        run_dir.join(plan::SUMMARY_FILE).display()
    );
    Ok(ExitCode::SUCCESS)
}

fn cmd_verify(opts: &Options) -> Result<ExitCode, BatchError> {
    if let Err(msg) = opts.reject_unknown(&["run"]) {
        return Ok(usage_error(&msg));
    }
    let run_dir = match opts.require("run") {
        Ok(r) => Path::new(r).to_path_buf(),
        Err(msg) => return Ok(usage_error(&msg)),
    };
    let report = verify_run(&run_dir)?;
    for problem in &report.problems {
        eprintln!("em-batch: verify: {problem}");
    }
    if !report.shards_pending.is_empty() {
        eprintln!(
            "em-batch: verify: {} shard(s) not yet committed (run `em-batch resume`)",
            report.shards_pending.len()
        );
    }
    if report.torn_manifest_bytes > 0 {
        eprintln!(
            "em-batch: verify: manifest ends in a torn {}-byte append (crash artifact; \
             `em-batch resume` will heal it)",
            report.torn_manifest_bytes
        );
    }
    println!(
        "em-batch: verify: {} shard(s) ok, {} pending, {} problem(s)",
        report.shards_ok,
        report.shards_pending.len(),
        report.problems.len()
    );
    if report.is_complete_and_ok() {
        Ok(ExitCode::SUCCESS)
    } else {
        Ok(ExitCode::from(2))
    }
}
