//! Shard execution: explain, commit, record.
//!
//! Shards run strictly in shard-id order (parallelism lives *inside* a
//! shard, across its records), so manifest entries always append in
//! increasing shard order — which is what makes a resumed manifest
//! byte-identical to an uninterrupted one. [`execute`] also holds an
//! exclusive OS lock (`flock`) on the run directory's `run.lock` for its
//! whole duration, so two concurrent run/resume processes can never
//! interleave manifest appends; the lock dies with the process, so a
//! crashed run never wedges a later resume. Per-record work fans out with
//! `em_par::par_map` over the shard's records; each record's explainer
//! runs serially (`threads: 1`), engaging the `PreparedScorer` kernel
//! through `par_map_init`'s serial path, one prepared state per batch
//! worker. Record outputs depend only on `(plan, input, model, global
//! index)`, never on the worker that computed them.

use std::path::Path;

use em_codec::explain::{run_explain_traced, ExplainOptions, ExplainRequest};
use em_codec::json::Value;
use em_entity::{Entity, LabeledPair, Schema};
use em_matchers::{load_logistic_file, FeatureExtractor, LogisticMatcher};
use em_obs::Tracer;
use em_par::{par_map, ParallelismConfig};

use crate::atomic;
use crate::error::BatchError;
use crate::failpoint::{FailSite, FailpointHook};
use crate::hash;
use crate::manifest::{self, ManifestEntry};
use crate::plan::{self, RunPlan};

/// Whether this invocation is a fresh `run` or a `resume`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunMode {
    /// Fails if the manifest already records completed shards.
    Fresh,
    /// Skips shards the manifest records as complete.
    Resume,
}

/// What one `run` / `resume` invocation did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutcome {
    /// Total shards in the plan.
    pub shards_total: usize,
    /// Shard ids this invocation computed and committed.
    pub shards_run: Vec<usize>,
    /// Shards skipped because the manifest already had them.
    pub shards_skipped: usize,
    /// Records explained by this invocation.
    pub records_explained: usize,
}

/// Encodes one output record line (newline-terminated).
///
/// The `response` field is the exact [`Value`] tree `em-serve` would
/// return for the same pair, explainer, and seed — serialized by the same
/// shortest-roundtrip writer, so the bytes match a served response body.
/// `seed` is recorded so a reader can replay any single record against
/// the server (`"config": {"seed": …}`) and diff the bytes; it is always
/// below [`plan::SEED_LIMIT`] (`record_seed` masks it there), so the
/// `as f64` conversion below is exact and the recorded seed equals the
/// seed the explainer consumed.
fn encode_record_line(
    schema: &Schema,
    index: usize,
    seed: u64,
    record: &LabeledPair,
    response: Value,
) -> String {
    let entity_obj = |e: &Entity| {
        Value::object(
            (0..schema.len())
                .map(|i| (schema.name(i).to_string(), Value::string(e.value(i))))
                .collect(),
        )
    };
    let mut line = Value::object(vec![
        ("index", index.into()),
        ("label", record.label.into()),
        ("seed", Value::Number(seed as f64)),
        (
            "pair",
            Value::object(vec![
                ("left", entity_obj(&record.pair.left)),
                ("right", entity_obj(&record.pair.right)),
            ]),
        ),
        ("response", response),
    ])
    .to_json();
    line.push('\n');
    line
}

/// Computes the full byte content of one shard file.
fn compute_shard(
    plan: &RunPlan,
    shard: usize,
    dataset: &em_entity::EmDataset,
    model: &LogisticMatcher,
    par: &ParallelismConfig,
    tracer: &dyn Tracer,
) -> Vec<u8> {
    let range = plan.shard_range(shard);
    let offset = range.start;
    let records = &dataset.records()[range];
    let schema = dataset.schema();
    let lines: Vec<String> = par_map(par, records, |i, record| {
        let index = offset + i;
        let seed = plan.record_seed(index);
        let request = ExplainRequest {
            pair: record.pair.clone(),
            explainer: plan.explainer,
            options: ExplainOptions {
                n_samples: plan.n_samples,
                seed,
                // Serial inside one record: the batch worker pool is the
                // only fork level, and the serial path is exactly where
                // `par_map_init` builds one `PreparedScorer` per worker.
                threads: 1,
                ..ExplainOptions::default()
            },
        };
        let response = run_explain_traced(model, schema, &request, tracer);
        encode_record_line(schema, index, seed, record, response)
    });
    lines.concat().into_bytes()
}

/// Loads the persisted matcher and re-attaches its feature extractor.
///
/// The extractor is re-fit on the (hash-pinned) input dataset, which is
/// deterministic, so run and resume score with bit-identical models.
fn load_model(
    run_dir: &Path,
    dataset: &em_entity::EmDataset,
) -> Result<LogisticMatcher, BatchError> {
    let path = run_dir.join(plan::MODEL_FILE);
    let model = load_logistic_file(&path, dataset.schema())
        .map_err(|e| BatchError::Model(format!("{}: {e}", path.display())))?;
    Ok(LogisticMatcher::from_parts(
        FeatureExtractor::fit(dataset),
        model,
    ))
}

/// Runs (or resumes) every incomplete shard of a planned run directory.
///
/// `threads` overrides the plan's worker-thread default when `Some`; any
/// value yields byte-identical outputs. Stage timings and counters from
/// the explainers accumulate into `tracer` (pass an
/// [`em_obs::Collector`] to collect them, [`em_obs::noop()`] otherwise).
pub fn execute(
    run_dir: &Path,
    mode: RunMode,
    threads: Option<usize>,
    hook: &dyn FailpointHook,
    tracer: &dyn Tracer,
) -> Result<RunOutcome, BatchError> {
    let plan = RunPlan::load(run_dir)?;

    // One run/resume process per run directory: a concurrent invocation
    // would interleave manifest appends and break the manifest's
    // byte-identity claim. flock is advisory but every manifest writer
    // goes through this function, and the OS releases it on process exit
    // (clean or not). Held until `execute` returns.
    let lock_path = run_dir.join(plan::LOCK_FILE);
    let lock_file = std::fs::OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(false)
        .open(&lock_path)
        .map_err(|e| BatchError::io(&lock_path, e))?;
    match lock_file.try_lock() {
        Ok(()) => {}
        Err(std::fs::TryLockError::WouldBlock) => {
            return Err(BatchError::Locked {
                path: lock_path.display().to_string(),
            });
        }
        Err(std::fs::TryLockError::Error(e)) => return Err(BatchError::io(&lock_path, e)),
    }

    let input = Path::new(&plan.input);
    let actual_hash = hash::hash_file(input).map_err(|e| BatchError::io(input, e))?;
    if actual_hash != plan.input_hash {
        return Err(BatchError::InputChanged {
            expected: plan.input_hash.clone(),
            actual: actual_hash,
        });
    }
    let dataset = plan::read_input(input)?;
    if dataset.len() != plan.records {
        return Err(BatchError::Plan(format!(
            "input has {} records, plan says {}",
            dataset.len(),
            plan.records
        )));
    }
    let schema = dataset.schema();
    let names: Vec<String> = (0..schema.len())
        .map(|i| schema.name(i).to_string())
        .collect();
    if names != plan.schema {
        return Err(BatchError::Plan(format!(
            "input schema {names:?} does not match plan schema {:?}",
            plan.schema
        )));
    }
    let model = load_model(run_dir, &dataset)?;

    let manifest_path = run_dir.join(plan::MANIFEST_FILE);
    let done = manifest::load_and_repair(&manifest_path)?;
    if let Some(bad) = done.iter().find(|e| e.shard >= plan.shards) {
        return Err(BatchError::Manifest(format!(
            "entry for shard {} but plan has only {} shards",
            bad.shard, plan.shards
        )));
    }
    if mode == RunMode::Fresh && !done.is_empty() {
        return Err(BatchError::Plan(format!(
            "{} shard(s) already committed — use `em-batch resume`",
            done.len()
        )));
    }

    let shard_dir = run_dir.join(plan::SHARD_DIR);
    std::fs::create_dir_all(&shard_dir).map_err(|e| BatchError::io(&shard_dir, e))?;

    let par = match threads.unwrap_or(plan.threads) {
        1 => ParallelismConfig::serial(),
        n => ParallelismConfig::with_threads(n),
    };

    let mut outcome = RunOutcome {
        shards_total: plan.shards,
        shards_run: Vec::new(),
        shards_skipped: 0,
        records_explained: 0,
    };
    for shard in 0..plan.shards {
        if done.iter().any(|e| e.shard == shard) {
            outcome.shards_skipped += 1;
            continue;
        }
        let bytes = compute_shard(&plan, shard, &dataset, &model, &par, tracer);
        let n_records = plan.shard_range(shard).len();
        let dst = plan.shard_path(run_dir, shard);
        let tmp = atomic::tmp_path(&dst);

        let fail = |site: FailSite| -> Result<(), BatchError> {
            if hook.should_fail(site, shard) {
                Err(BatchError::Failpoint { site, shard })
            } else {
                Ok(())
            }
        };
        fail(FailSite::BeforeWrite)?;
        atomic::write_sync(&tmp, &bytes).map_err(|e| BatchError::io(&tmp, e))?;
        fail(FailSite::BeforeRename)?;
        atomic::rename_durable(&tmp, &dst).map_err(|e| BatchError::io(&dst, e))?;
        fail(FailSite::BeforeManifest)?;
        manifest::append(
            &manifest_path,
            &ManifestEntry {
                shard,
                records: n_records,
                hash: hash::content_hash(&bytes),
            },
        )?;
        fail(FailSite::AfterManifest)?;

        outcome.shards_run.push(shard);
        outcome.records_explained += n_records;
        eprintln!(
            "em-batch: shard {}/{} committed ({n_records} records)",
            shard + 1,
            plan.shards
        );
    }
    Ok(outcome)
}
