//! Post-run progress/metrics summary.
//!
//! `run` / `resume` finish by writing `summary.json`: what the invocation
//! did plus the `em-obs` stage timings and counters accumulated across
//! every explanation. This is an **observability artifact** — timings
//! vary run to run, so the summary sits deliberately outside the
//! byte-identity claim, which covers shard files and the manifest only.
//! `em-batch` itself never reads the clock; all nanosecond figures here
//! were measured by `em-obs` spans inside the explainers.

use std::path::Path;

use em_codec::json::Value;
use em_obs::{Collector, Counter, Stage};

use crate::atomic;
use crate::error::BatchError;
use crate::plan::{RunPlan, SUMMARY_FILE};
use crate::runner::RunOutcome;

/// Builds the summary JSON tree.
pub fn summary_value(plan: &RunPlan, outcome: &RunOutcome, collector: &Collector) -> Value {
    let stages = Stage::all()
        .into_iter()
        .map(|stage| {
            Value::object(vec![
                ("stage", Value::string(stage.label())),
                ("nanos", Value::Number(collector.stage_nanos(stage) as f64)),
                (
                    "entries",
                    Value::Number(collector.stage_entries(stage) as f64),
                ),
            ])
        })
        .collect();
    let counters = Counter::all()
        .into_iter()
        .map(|counter| {
            Value::object(vec![
                ("counter", Value::string(counter.label())),
                ("value", Value::Number(collector.counter(counter) as f64)),
            ])
        })
        .collect();
    Value::object(vec![
        ("dataset", Value::string(plan.dataset.as_str())),
        ("explainer", Value::string(plan.explainer.name())),
        ("n_samples", plan.n_samples.into()),
        ("records", plan.records.into()),
        ("shards_total", outcome.shards_total.into()),
        (
            "shards_run",
            Value::Array(outcome.shards_run.iter().map(|&s| s.into()).collect()),
        ),
        ("shards_skipped", outcome.shards_skipped.into()),
        ("records_explained", outcome.records_explained.into()),
        ("stages", Value::Array(stages)),
        ("counters", Value::Array(counters)),
    ])
}

/// Atomically writes `summary.json` into the run directory.
pub fn write_summary(
    run_dir: &Path,
    plan: &RunPlan,
    outcome: &RunOutcome,
    collector: &Collector,
) -> Result<(), BatchError> {
    let path = run_dir.join(SUMMARY_FILE);
    let mut text = summary_value(plan, outcome, collector).to_json();
    text.push('\n');
    atomic::write_atomic(&path, text.as_bytes()).map_err(|e| BatchError::io(&path, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_codec::explain::ExplainerKind;

    #[test]
    fn summary_reports_stages_counters_and_progress() {
        let plan = RunPlan {
            dataset: "t".into(),
            input: "t.csv".into(),
            input_hash: "fnv1a64:0000000000000000".into(),
            records: 10,
            shards: 2,
            seed: 0,
            explainer: ExplainerKind::Landmark,
            n_samples: 64,
            threads: 1,
            schema: vec!["name".into()],
        };
        let outcome = RunOutcome {
            shards_total: 2,
            shards_run: vec![1],
            shards_skipped: 1,
            records_explained: 5,
        };
        let collector = Collector::new();
        let v = summary_value(&plan, &outcome, &collector);
        assert_eq!(v.get("shards_skipped").and_then(Value::as_u64), Some(1));
        assert_eq!(v.get("records_explained").and_then(Value::as_u64), Some(5));
        let stages = v.get("stages").and_then(Value::as_array).unwrap();
        assert_eq!(stages.len(), em_obs::N_STAGES);
        let counters = v.get("counters").and_then(Value::as_array).unwrap();
        assert_eq!(counters.len(), em_obs::N_COUNTERS);
    }
}
