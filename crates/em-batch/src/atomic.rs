//! Durable file commits: write-to-tmp, fsync, atomic rename.
//!
//! Every file the pipeline publishes (shard outputs, plan, summary)
//! appears atomically: readers — including a resumed run — either see the
//! complete previous content or the complete new content, never a torn
//! write. The tmp file lives in the same directory as its target so the
//! rename stays within one filesystem. Directory fsync after rename is
//! best-effort: on filesystems where it fails the rename is still atomic,
//! only its durability after power loss is weaker, and the manifest (the
//! source of truth for completion) does its own sync.

use std::io::Write;
use std::path::{Path, PathBuf};

/// The tmp-file path a commit of `path` stages through.
pub fn tmp_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    PathBuf::from(os)
}

/// Writes `bytes` to `path` and fsyncs the file (no rename — the caller
/// controls when the data becomes visible).
pub fn write_sync(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    file.write_all(bytes)?;
    file.sync_all()
}

/// Renames `tmp` onto `dst` and best-effort-fsyncs the parent directory
/// so the rename itself is durable.
pub fn rename_durable(tmp: &Path, dst: &Path) -> std::io::Result<()> {
    std::fs::rename(tmp, dst)?;
    if let Some(parent) = dst.parent() {
        if let Ok(dir) = std::fs::File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

/// Full atomic commit: stage `bytes` in the tmp file, fsync, rename into
/// place.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = tmp_path(path);
    write_sync(&tmp, bytes)?;
    rename_durable(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("em-batch-atomic-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn tmp_path_appends_suffix() {
        assert_eq!(
            tmp_path(Path::new("/x/shard-0.jsonl")),
            PathBuf::from("/x/shard-0.jsonl.tmp")
        );
    }

    #[test]
    fn write_atomic_replaces_content_and_removes_tmp() {
        let path = scratch("commit.txt");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        assert!(!tmp_path(&path).exists());
    }
}
