//! `em-batch verify`: audit a run directory against its manifest.
//!
//! Recomputes every committed shard file's content hash and checks it
//! against the manifest, checks line counts against the planned shard
//! ranges, and reports shards that are planned but not yet committed.
//! Verification is strictly read-only: the manifest is read with the
//! non-repairing [`manifest::load`], so a torn final line (the normal
//! artifact of a crash mid-append) is *reported* — never truncated —
//! and auditing a crashed run directory leaves every byte in place for
//! `em-batch resume` to heal.

use std::path::Path;

use crate::error::BatchError;
use crate::hash;
use crate::manifest;
use crate::plan::{RunPlan, MANIFEST_FILE};

/// The result of auditing a run directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyReport {
    /// Shards whose file exists and matches its manifest entry.
    pub shards_ok: usize,
    /// Planned shards with no manifest entry yet (an incomplete run is
    /// not corrupt — it just needs `resume`).
    pub shards_pending: Vec<usize>,
    /// Integrity violations: hash mismatches, wrong line counts, missing
    /// files. Empty means every committed shard checks out.
    pub problems: Vec<String>,
    /// Bytes of a torn final manifest append (`0` = clean). Benign — the
    /// expected trace of a crash mid-append, healed by the next
    /// `resume` — but the run is not complete while it is present.
    pub torn_manifest_bytes: usize,
}

impl VerifyReport {
    /// `true` when every committed shard is intact *and* the run is
    /// complete.
    pub fn is_complete_and_ok(&self) -> bool {
        self.problems.is_empty() && self.shards_pending.is_empty() && self.torn_manifest_bytes == 0
    }
}

/// Audits `run_dir`. Errors only on unreadable plan/manifest; integrity
/// findings land in the report.
pub fn verify_run(run_dir: &Path) -> Result<VerifyReport, BatchError> {
    let plan = RunPlan::load(run_dir)?;
    let loaded = manifest::load(&run_dir.join(MANIFEST_FILE))?;
    let entries = loaded.entries;

    let mut report = VerifyReport {
        shards_ok: 0,
        shards_pending: Vec::new(),
        problems: Vec::new(),
        torn_manifest_bytes: loaded.torn_bytes,
    };
    for shard in 0..plan.shards {
        let Some(entry) = entries.iter().find(|e| e.shard == shard) else {
            report.shards_pending.push(shard);
            continue;
        };
        let expected_records = plan.shard_range(shard).len();
        if entry.records != expected_records {
            report.problems.push(format!(
                "shard {shard}: manifest says {} records, plan range has {expected_records}",
                entry.records
            ));
            continue;
        }
        let path = plan.shard_path(run_dir, shard);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) => {
                report
                    .problems
                    .push(format!("shard {shard}: {}: {e}", path.display()));
                continue;
            }
        };
        let actual_hash = hash::content_hash(&bytes);
        if actual_hash != entry.hash {
            report.problems.push(format!(
                "shard {shard}: content hash {actual_hash} does not match manifest {}",
                entry.hash
            ));
            continue;
        }
        let lines = bytes.iter().filter(|&&b| b == b'\n').count();
        if lines != entry.records {
            report.problems.push(format!(
                "shard {shard}: file has {lines} lines, manifest says {} records",
                entry.records
            ));
            continue;
        }
        report.shards_ok += 1;
    }
    for entry in &entries {
        if entry.shard >= plan.shards {
            report.problems.push(format!(
                "manifest entry for shard {} but plan has only {} shards",
                entry.shard, plan.shards
            ));
        }
    }
    Ok(report)
}
