//! Pipeline error type and process exit codes.

use crate::failpoint::FailSite;
use em_entity::CsvError;

/// Everything that can stop a batch run.
#[derive(Debug)]
pub enum BatchError {
    /// A filesystem operation failed; `path` names the file involved.
    Io {
        /// The file or directory the operation touched.
        path: String,
        /// The underlying error message.
        error: String,
    },
    /// The input CSV failed to parse.
    Csv(CsvError),
    /// The plan file is missing, malformed, or inconsistent with the run
    /// directory state.
    Plan(String),
    /// The manifest is corrupt beyond the tolerated torn final line.
    Manifest(String),
    /// The input file no longer matches the hash recorded at plan time —
    /// running against it would silently break the determinism contract.
    InputChanged {
        /// Hash recorded in the plan.
        expected: String,
        /// Hash of the file on disk now.
        actual: String,
    },
    /// The persisted model failed to load.
    Model(String),
    /// Another run/resume process holds the run directory's exclusive
    /// lock; running anyway would interleave manifest appends.
    Locked {
        /// The lock file path.
        path: String,
    },
    /// An injected failpoint fired (tests and the CI kill/resume smoke
    /// job). The CLI maps this to exit code 3 so scripts can tell a
    /// deliberate crash from a real failure.
    Failpoint {
        /// Which commit-protocol site fired.
        site: FailSite,
        /// The shard being committed.
        shard: usize,
    },
}

impl std::fmt::Display for BatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BatchError::Io { path, error } => write!(f, "{path}: {error}"),
            BatchError::Csv(e) => write!(f, "input csv: {e}"),
            BatchError::Plan(msg) => write!(f, "plan: {msg}"),
            BatchError::Manifest(msg) => write!(f, "manifest: {msg}"),
            BatchError::InputChanged { expected, actual } => write!(
                f,
                "input file changed since plan time (expected {expected}, found {actual}); \
                 re-run `em-batch plan`"
            ),
            BatchError::Model(msg) => write!(f, "model: {msg}"),
            BatchError::Locked { path } => write!(
                f,
                "{path}: run directory is locked by another em-batch process"
            ),
            BatchError::Failpoint { site, shard } => {
                write!(f, "failpoint {} fired on shard {shard}", site.name())
            }
        }
    }
}

impl std::error::Error for BatchError {}

impl From<CsvError> for BatchError {
    fn from(e: CsvError) -> Self {
        BatchError::Csv(e)
    }
}

impl BatchError {
    /// Wraps an I/O error with the path it concerned.
    pub fn io(path: &std::path::Path, error: std::io::Error) -> Self {
        BatchError::Io {
            path: path.display().to_string(),
            error: error.to_string(),
        }
    }

    /// The process exit code the CLI uses for this error: `3` for a
    /// deliberate failpoint crash, `2` for everything else.
    pub fn exit_code(&self) -> i32 {
        match self {
            BatchError::Failpoint { .. } => 3,
            _ => 2,
        }
    }
}
