//! Checkpointed, sharded offline batch-explanation pipeline.
//!
//! `em-batch` takes a Magellan-style CSV, a trained matcher, and an
//! explainer config, and produces one JSONL file of explanations per
//! shard. The pipeline is built around two guarantees:
//!
//! 1. **Determinism.** Every output byte is a pure function of
//!    `(plan, input file, model file)`. Record seeds derive from the plan
//!    seed and the record's global index (DESIGN.md §7), each record runs
//!    through the same [`em_codec::explain::run_explain_traced`] encoder
//!    as the online server, and shard boundaries are fixed at plan time —
//!    so the concatenated shard outputs are byte-identical at any thread
//!    count and any shard count.
//! 2. **Crash safety.** Shard files commit via write-to-tmp +
//!    `fsync` + atomic rename, and completion is recorded in an
//!    append-only manifest whose lines are flushed and synced
//!    individually. A run killed at *any* point can be resumed with
//!    `em-batch resume`: finished shards are skipped, the interrupted
//!    shard is recomputed (producing identical bytes), and the final run
//!    directory — shard files *and* manifest — is byte-identical to an
//!    uninterrupted run. An exclusive `flock` on the run directory keeps
//!    concurrent run/resume processes from interleaving manifest
//!    appends; it dies with the process, so a kill never wedges a later
//!    resume. DESIGN.md §12 spells out the argument.
//!
//! The crate ships a CLI binary (`em-batch`) with `plan` / `run` /
//! `resume` / `verify` subcommands plus a `gen` helper for synthetic
//! inputs, and an injectable failpoint hook ([`failpoint`]) that the
//! kill/resume test sweep and the CI smoke job use to crash the pipeline
//! at every commit-protocol site.
//!
//! Timing note: this crate never reads the clock. All timings in the
//! summary JSON come from `em-obs` spans recorded inside the explainers
//! (the one declared `nondet-taint` sanitizer), which keeps everything
//! reachable from this crate's shard writers clean under `em-lint`'s
//! taint rule. The summary is an observability artifact and is
//! deliberately *outside* the byte-identity claim.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

pub mod atomic;
pub mod error;
pub mod failpoint;
pub mod gen;
pub mod hash;
pub mod manifest;
pub mod plan;
pub mod runner;
pub mod summary;
pub mod verify;

pub use error::BatchError;
pub use failpoint::{FailAt, FailSite, FailpointHook, NoFailpoints};
pub use manifest::ManifestEntry;
pub use plan::{PlanConfig, RunPlan};
pub use runner::{execute, RunMode, RunOutcome};
pub use verify::{verify_run, VerifyReport};
