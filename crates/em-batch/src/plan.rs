//! Run planning: fix every determinism-relevant decision up front.
//!
//! `em-batch plan` reads the input CSV once (streaming), trains the
//! logistic matcher, persists its coefficients, and writes `plan.json`
//! recording the input content hash, record count, shard count, base
//! seed, and explainer config. Everything `run` / `resume` does later is
//! a pure function of this file plus the (hash-pinned) input and model —
//! which is the whole determinism argument: a resumed run reads the same
//! plan, so it recomputes exactly the same bytes. Shard boundaries are
//! balanced contiguous ranges derived from `(records, shards)` alone, in
//! the same first-`extra`-chunks-get-one-more shape as `em_par`'s
//! chunking, so they never depend on thread count or timing.

use std::ops::Range;
use std::path::{Path, PathBuf};

use em_codec::explain::ExplainerKind;
use em_codec::json::Value;
use em_entity::{dataset_from_reader, EmDataset};
use em_matchers::{save_logistic_file, LogisticMatcher, MatcherConfig};

use crate::atomic;
use crate::error::BatchError;
use crate::hash;

/// File name of the plan inside a run directory.
pub const PLAN_FILE: &str = "plan.json";
/// File name of the persisted matcher coefficients.
pub const MODEL_FILE: &str = "model.txt";
/// File name of the append-only completion manifest.
pub const MANIFEST_FILE: &str = "manifest.jsonl";
/// Subdirectory holding the per-shard JSONL outputs.
pub const SHARD_DIR: &str = "shards";
/// File name of the post-run metrics summary.
pub const SUMMARY_FILE: &str = "summary.json";
/// File name of the run-directory exclusive lock (`runner::execute`
/// flocks it so only one run/resume process can append to the manifest).
pub const LOCK_FILE: &str = "run.lock";

/// Multiplier mixing the record index into its seed (DESIGN.md §7).
const SEED_MIX: u64 = 0x9E37_79B9;

/// Upper bound (exclusive) on any seed that crosses a JSON boundary.
///
/// JSON numbers are f64, exact only for integers below 2^53. The base
/// seed is bounded at plan time and every derived record seed is masked
/// below this limit, so the `seed` recorded on an output line — and
/// replayed in an `em-serve` request body — is always the exact seed the
/// explainer consumed.
pub const SEED_LIMIT: u64 = 1 << 53;

/// Everything a run needs to know, fixed at plan time.
#[derive(Debug, Clone, PartialEq)]
pub struct RunPlan {
    /// Dataset name (carried into outputs for provenance).
    pub dataset: String,
    /// Path of the input CSV as given to `plan`.
    pub input: String,
    /// Content hash of the input at plan time; `run` refuses to start if
    /// the file on disk no longer matches.
    pub input_hash: String,
    /// Total labeled pairs in the input.
    pub records: usize,
    /// Number of output shards.
    pub shards: usize,
    /// Base seed; each record derives its own seed from this and its
    /// global index.
    pub seed: u64,
    /// Which explainer runs on every pair.
    pub explainer: ExplainerKind,
    /// Perturbation samples per surrogate fit.
    pub n_samples: usize,
    /// Worker threads per shard (`0` auto, `1` serial). Not part of any
    /// output byte — recorded only as the default for `run`.
    pub threads: usize,
    /// Schema attribute names, in order, for validation at load time.
    pub schema: Vec<String>,
}

/// User-tunable knobs for `em-batch plan`.
#[derive(Debug, Clone)]
pub struct PlanConfig {
    /// Number of output shards (≥ 1).
    pub shards: usize,
    /// Base seed.
    pub seed: u64,
    /// Explainer to run.
    pub explainer: ExplainerKind,
    /// Samples per surrogate fit.
    pub n_samples: usize,
    /// Default worker threads for `run`.
    pub threads: usize,
}

impl Default for PlanConfig {
    fn default() -> Self {
        PlanConfig {
            shards: 4,
            seed: 0,
            explainer: ExplainerKind::Landmark,
            n_samples: 500,
            threads: 0,
        }
    }
}

impl RunPlan {
    /// The global record range shard `shard` covers: balanced contiguous
    /// chunks, the first `records % shards` shards one record larger.
    pub fn shard_range(&self, shard: usize) -> Range<usize> {
        let base = self.records / self.shards;
        let extra = self.records % self.shards;
        let start = shard * base + shard.min(extra);
        let len = base + usize::from(shard < extra);
        start..start + len
    }

    /// The seed record `index` explains with — a function of the base
    /// seed and the *global* index only, so shard and thread layout can
    /// never change it. Masked below [`SEED_LIMIT`] because the seed is
    /// written to the output line as a JSON number and replayed against
    /// `em-serve`: the unmasked product routinely exceeds 2^53, which
    /// f64 would silently round, recording a seed the explainer never
    /// used.
    pub fn record_seed(&self, index: usize) -> u64 {
        self.seed.wrapping_add(index as u64).wrapping_mul(SEED_MIX) & (SEED_LIMIT - 1)
    }

    /// The shard output file name, zero-padded so lexicographic order is
    /// shard order.
    pub fn shard_file_name(shard: usize) -> String {
        format!("shard-{shard:05}.jsonl")
    }

    /// Absolute path of shard `shard`'s committed output.
    pub fn shard_path(&self, run_dir: &Path, shard: usize) -> PathBuf {
        run_dir.join(SHARD_DIR).join(Self::shard_file_name(shard))
    }

    /// Serializes the plan to its JSON file form.
    pub fn to_json(&self) -> String {
        let mut text = Value::object(vec![
            ("version", 1usize.into()),
            ("dataset", Value::string(self.dataset.as_str())),
            ("input", Value::string(self.input.as_str())),
            ("input_hash", Value::string(self.input_hash.as_str())),
            ("records", self.records.into()),
            ("shards", self.shards.into()),
            // Seeds ride the JSON number type (f64), exact for integers
            // below 2^53: `plan` bounds the base seed at creation and
            // `record_seed` masks derived seeds below `SEED_LIMIT`.
            ("seed", Value::Number(self.seed as f64)),
            ("explainer", Value::string(self.explainer.name())),
            ("n_samples", self.n_samples.into()),
            ("threads", self.threads.into()),
            (
                "schema",
                Value::Array(self.schema.iter().map(Value::string).collect()),
            ),
        ])
        .to_json();
        text.push('\n');
        text
    }

    /// Parses a plan from its JSON file form.
    pub fn from_json(text: &str) -> Result<RunPlan, BatchError> {
        let bad = |msg: &str| BatchError::Plan(msg.to_string());
        let root = Value::parse(text).map_err(|e| BatchError::Plan(e.to_string()))?;
        let str_field = |key: &str| -> Result<String, BatchError> {
            Ok(root
                .get(key)
                .and_then(Value::as_str)
                .ok_or_else(|| BatchError::Plan(format!("missing string field {key:?}")))?
                .to_string())
        };
        let usize_field = |key: &str| -> Result<usize, BatchError> {
            Ok(root
                .get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| BatchError::Plan(format!("missing integer field {key:?}")))?
                as usize)
        };
        if usize_field("version")? != 1 {
            return Err(bad("unsupported plan version"));
        }
        let explainer_name = str_field("explainer")?;
        let explainer = ExplainerKind::parse(&explainer_name)
            .ok_or_else(|| BatchError::Plan(format!("unknown explainer {explainer_name:?}")))?;
        let schema = root
            .get("schema")
            .and_then(Value::as_array)
            .ok_or_else(|| bad("missing array field \"schema\""))?
            .iter()
            .map(|v| {
                v.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| bad("schema entries must be strings"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let plan = RunPlan {
            dataset: str_field("dataset")?,
            input: str_field("input")?,
            input_hash: str_field("input_hash")?,
            records: usize_field("records")?,
            shards: usize_field("shards")?,
            seed: root
                .get("seed")
                .and_then(Value::as_u64)
                .ok_or_else(|| bad("missing integer field \"seed\""))?,
            explainer,
            n_samples: usize_field("n_samples")?,
            threads: usize_field("threads")?,
            schema,
        };
        if plan.shards == 0 {
            return Err(bad("shard count must be at least 1"));
        }
        Ok(plan)
    }

    /// Loads the plan from a run directory.
    pub fn load(run_dir: &Path) -> Result<RunPlan, BatchError> {
        let path = run_dir.join(PLAN_FILE);
        let text = std::fs::read_to_string(&path).map_err(|e| BatchError::io(&path, e))?;
        RunPlan::from_json(&text)
    }
}

/// Reads the input dataset with the streaming CSV importer.
pub fn read_input(path: &Path) -> Result<EmDataset, BatchError> {
    let file = std::fs::File::open(path).map_err(|e| BatchError::io(path, e))?;
    let name = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "input".to_string());
    let reader = std::io::BufReader::new(file);
    Ok(dataset_from_reader(&name, reader)?)
}

/// Creates a run directory: trains the matcher on the input, persists its
/// coefficients, and writes `plan.json`. Fails if the directory already
/// holds a plan (plans are immutable; make a new run directory instead).
pub fn create_plan(
    input: &Path,
    run_dir: &Path,
    config: &PlanConfig,
) -> Result<RunPlan, BatchError> {
    if config.shards == 0 {
        return Err(BatchError::Plan("shard count must be at least 1".into()));
    }
    if config.seed >= SEED_LIMIT {
        return Err(BatchError::Plan(
            "seed must fit in 53 bits (JSON number precision)".into(),
        ));
    }
    let plan_path = run_dir.join(PLAN_FILE);
    if plan_path.exists() {
        return Err(BatchError::Plan(format!(
            "{} already exists; plans are immutable — use a fresh run directory",
            plan_path.display()
        )));
    }
    let dataset = read_input(input)?;
    if dataset.is_empty() {
        return Err(BatchError::Plan("input has no records".into()));
    }
    if config.shards > dataset.len() {
        return Err(BatchError::Plan(format!(
            "shard count {} exceeds record count {}",
            config.shards,
            dataset.len()
        )));
    }
    let input_hash = hash::hash_file(input).map_err(|e| BatchError::io(input, e))?;

    std::fs::create_dir_all(run_dir.join(SHARD_DIR)).map_err(|e| BatchError::io(run_dir, e))?;

    let matcher = LogisticMatcher::train(&dataset, &MatcherConfig::default());
    let model_path = run_dir.join(MODEL_FILE);
    save_logistic_file(&model_path, matcher.model(), dataset.schema())
        .map_err(|e| BatchError::Model(e.to_string()))?;

    let schema = dataset.schema();
    let plan = RunPlan {
        dataset: dataset.name().to_string(),
        input: input.display().to_string(),
        input_hash,
        records: dataset.len(),
        shards: config.shards,
        seed: config.seed,
        explainer: config.explainer,
        n_samples: config.n_samples,
        threads: config.threads,
        schema: (0..schema.len())
            .map(|i| schema.name(i).to_string())
            .collect(),
    };
    atomic::write_atomic(&plan_path, plan.to_json().as_bytes())
        .map_err(|e| BatchError::io(&plan_path, e))?;
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(records: usize, shards: usize) -> RunPlan {
        RunPlan {
            dataset: "t".into(),
            input: "t.csv".into(),
            input_hash: "fnv1a64:0000000000000000".into(),
            records,
            shards,
            seed: 42,
            explainer: ExplainerKind::Landmark,
            n_samples: 64,
            threads: 2,
            schema: vec!["name".into()],
        }
    }

    #[test]
    fn shard_ranges_partition_the_records() {
        for (records, shards) in [(10, 3), (7, 7), (100, 1), (5, 4)] {
            let p = plan(records, shards);
            let mut covered = Vec::new();
            for s in 0..shards {
                let r = p.shard_range(s);
                covered.extend(r);
            }
            assert_eq!(
                covered,
                (0..records).collect::<Vec<_>>(),
                "{records}/{shards}"
            );
        }
    }

    #[test]
    fn first_shards_take_the_remainder() {
        let p = plan(10, 3);
        assert_eq!(p.shard_range(0), 0..4);
        assert_eq!(p.shard_range(1), 4..7);
        assert_eq!(p.shard_range(2), 7..10);
    }

    #[test]
    fn record_seed_depends_only_on_global_index() {
        let a = plan(10, 2);
        let b = plan(10, 5);
        for i in 0..10 {
            assert_eq!(a.record_seed(i), b.record_seed(i));
        }
        assert_ne!(a.record_seed(0), a.record_seed(1));
    }

    #[test]
    fn record_seeds_survive_json_f64_roundtrip() {
        for base in [0, 42, 1 << 22, 1_754_600_000_000, SEED_LIMIT - 1] {
            let mut p = plan(10, 2);
            p.seed = base;
            for i in 0..10 {
                let s = p.record_seed(i);
                assert!(s < SEED_LIMIT, "base {base}, record {i}");
                assert_eq!(s as f64 as u64, s, "base {base}, record {i}");
            }
        }
        // The mask is load-bearing for realistic seeds: a
        // timestamp-scale base's unmasked product overflows 2^53.
        let mut p = plan(10, 2);
        p.seed = 1_754_600_000_000;
        let unmasked = p.seed.wrapping_add(3).wrapping_mul(SEED_MIX);
        assert!(unmasked >= SEED_LIMIT);
        assert_eq!(p.record_seed(3), unmasked & (SEED_LIMIT - 1));
    }

    #[test]
    fn oversized_base_seed_is_rejected_before_any_io() {
        let config = PlanConfig {
            seed: SEED_LIMIT,
            ..PlanConfig::default()
        };
        assert!(matches!(
            create_plan(Path::new("no-such.csv"), Path::new("no-such-dir"), &config),
            Err(BatchError::Plan(_))
        ));
    }

    #[test]
    fn plan_roundtrips_through_json() {
        let p = plan(10, 3);
        let back = RunPlan::from_json(&p.to_json()).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn malformed_plans_are_rejected() {
        for bad in [
            "not json",
            "{}",
            r#"{"version": 2}"#,
            &plan(10, 3).to_json().replace("landmark", "shap"),
        ] {
            assert!(
                matches!(RunPlan::from_json(bad), Err(BatchError::Plan(_))),
                "{bad:?}"
            );
        }
    }

    #[test]
    fn shard_file_names_sort_in_shard_order() {
        assert_eq!(RunPlan::shard_file_name(3), "shard-00003.jsonl");
        assert!(RunPlan::shard_file_name(9) < RunPlan::shard_file_name(10));
    }
}
