//! Rule-based explanations: Anchor and landmark-Anchor.
//!
//! The paper positions Landmark Explanation as a framework around a
//! *generic* perturbation explainer. This example swaps the LIME-style
//! surrogate for the Anchor explainer (Ribeiro et al. 2018, cited in the
//! paper's related work): first a plain anchor over both entities, then a
//! landmark anchor where one entity is frozen.
//!
//! Run with: `cargo run --release --example anchor_rules`

use landmark_explanation::landmark::{
    GenerationStrategy, LandmarkAnchorConfig, LandmarkAnchorExplainer,
};
use landmark_explanation::lime::{AnchorConfig, AnchorExplainer};
use landmark_explanation::prelude::*;

fn main() {
    let dataset = MagellanBenchmark::scaled(0.2).generate(DatasetId::SAg);
    let schema = dataset.schema().clone();
    println!("Training the EM model on {} records...", dataset.len());
    let matcher = LogisticMatcher::train(&dataset, &MatcherConfig::default());

    // A matching record.
    let record = dataset
        .records()
        .iter()
        .find(|r| r.label && matcher.predict(&schema, &r.pair))
        .expect("a predicted match exists")
        .pair
        .clone();

    println!("\nRecord:\n{}", record.display_with(&schema));
    println!(
        "Model probability: {:.3}\n",
        matcher.predict_proba(&schema, &record)
    );

    // Plain anchor over both entities.
    let anchor = AnchorExplainer::new(AnchorConfig {
        n_samples: 150,
        ..Default::default()
    })
    .explain(&matcher, &schema, &record);
    println!(
        "=== Anchor (both entities perturbable) — precision {:.2}, coverage {:.3} ===",
        anchor.precision, anchor.coverage
    );
    for (side, token) in &anchor.anchor {
        println!(
            "   IF {}_{} contains {:?}",
            side.prefix(),
            schema.name(token.attribute),
            token.text
        );
    }
    println!(
        "   THEN prediction stays {}",
        if anchor.prediction {
            "MATCH"
        } else {
            "NON-MATCH"
        }
    );

    // Landmark anchor: freeze the left entity.
    let cfg = LandmarkAnchorConfig {
        strategy: GenerationStrategy::SingleEntity,
        anchor: AnchorConfig {
            n_samples: 150,
            ..Default::default()
        },
    };
    let le = LandmarkAnchorExplainer::new(cfg).explain_with_landmark(
        &matcher,
        &schema,
        &record,
        EntitySide::Left,
    );
    println!(
        "\n=== Landmark anchor (left frozen, right perturbable) — precision {:.2} ===",
        le.precision
    );
    for (token, injected) in &le.anchor {
        println!(
            "   IF right_{} contains {:?}{}",
            schema.name(token.attribute),
            token.text,
            if *injected {
                " (injected from landmark)"
            } else {
                ""
            }
        );
    }
    println!(
        "   THEN prediction stays {}",
        if le.prediction { "MATCH" } else { "NON-MATCH" }
    );
}
