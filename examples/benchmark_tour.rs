//! Tour of the synthetic Magellan benchmark (the paper's Table 1).
//!
//! Generates each of the twelve datasets at a reduced scale, prints its
//! Table 1 row, trains the logistic-regression matcher, and reports its
//! test-split F1 — demonstrating the full data → model pipeline that the
//! explanation experiments build on.
//!
//! Run with: `cargo run --release --example benchmark_tour`

use landmark_explanation::entity::SplitConfig;
use landmark_explanation::matchers::evaluate_matcher;
use landmark_explanation::prelude::*;

fn main() {
    let scale = 0.1;
    let benchmark = MagellanBenchmark::scaled(scale);
    println!("Generating the benchmark at scale {scale} (Table 1 shapes):\n");
    println!(
        "{:<7} {:<10} {:<20} {:>7} {:>8} {:>6}",
        "Dataset", "Type", "Source", "Size", "% Match", "F1"
    );

    for id in DatasetId::all() {
        let dataset = benchmark.generate(id);
        let (train, test) = dataset.train_test_split(&SplitConfig::default());
        let matcher = LogisticMatcher::train(&train, &MatcherConfig::default());
        let f1 = evaluate_matcher(&matcher, &test, 0.5).f1();
        println!(
            "{:<7} {:<10} {:<20} {:>7} {:>8.2} {:>6.3}",
            id.short_name(),
            id.dataset_type(),
            id.source_name(),
            dataset.len(),
            dataset.match_percentage(),
            f1
        );
    }

    println!(
        "\nFull-scale sizes (paper Table 1): rerun the table1 binary:\n\
         \tcargo run --release -p bench --bin table1"
    );
}
