//! Using the library on your own data: the CSV workflow.
//!
//! The real Magellan datasets ship as CSV with `left_*` / `right_*`
//! column pairs and a `label` column. This example writes a synthetic
//! dataset out in that layout, reads it back (the path you would take
//! with real data), trains the matcher, and explains a record — the full
//! downstream-user workflow without any synthetic-generator coupling.
//!
//! Run with: `cargo run --release --example csv_workflow`

use landmark_explanation::entity::{dataset_from_csv, dataset_to_csv};
use landmark_explanation::prelude::*;

fn main() {
    // Stand-in for "your dataset": serialize a small benchmark dataset.
    let original = MagellanBenchmark::scaled(0.2).generate(DatasetId::SFz);
    let csv = dataset_to_csv(&original);
    println!(
        "Serialized {} records to CSV ({} bytes).",
        original.len(),
        csv.len()
    );
    println!(
        "First lines:\n{}",
        csv.lines().take(3).collect::<Vec<_>>().join("\n")
    );

    // The part you would run on real data: parse, train, explain.
    let dataset = dataset_from_csv("my-restaurants", &csv).expect("well-formed CSV");
    assert_eq!(dataset.len(), original.len());
    println!(
        "\nParsed back: {} records, {} attributes, {:.1}% match.",
        dataset.len(),
        dataset.schema().len(),
        dataset.match_percentage()
    );

    let matcher = LogisticMatcher::train(&dataset, &MatcherConfig::default());
    let record = &dataset.records()[0].pair;
    let dual = LandmarkExplainer::default().explain(&matcher, dataset.schema(), record);

    println!("\nRecord:\n{}", record.display_with(dataset.schema()));
    for le in dual.both() {
        println!(
            "landmark={} -> top tokens:\n{}\n",
            le.landmark,
            le.explanation.render_top_k(dataset.schema(), 3)
        );
    }
}
