//! Global model interpretation via explanation summaries.
//!
//! The paper's future work (Section 5) proposes summarizing local
//! explanations to interpret the EM model as a whole. This example
//! explains a sample of records from one dataset and aggregates the
//! explanations: mean attribute importance and the most consistently
//! match-supporting / match-blocking tokens.
//!
//! Run with: `cargo run --release --example global_summary`

use landmark_explanation::landmark::summarize;
use landmark_explanation::prelude::*;

fn main() {
    let dataset = MagellanBenchmark::scaled(0.2).generate(DatasetId::SIa);
    let schema = dataset.schema().clone();
    println!("Training the EM model on {} records...", dataset.len());
    let matcher = LogisticMatcher::train(&dataset, &MatcherConfig::default());

    let explainer = LandmarkExplainer::new(LandmarkConfig {
        n_samples: 300,
        ..Default::default()
    });

    println!("Explaining 20 records per label...");
    let mut explanations = Vec::new();
    for label in [true, false] {
        for record in dataset.sample_by_label(label, 20, 7) {
            explanations.push(explainer.explain(&matcher, &schema, &record.pair));
        }
    }
    let views: Vec<_> = explanations.iter().flat_map(|d| d.both()).collect();
    let summary = summarize(&schema, &views, 3);

    println!(
        "\nAggregated over {} landmark explanations.\n",
        summary.n_explanations
    );

    println!("Mean attribute importance (|surrogate weight| per token):");
    let mut attrs: Vec<(usize, f64)> = summary
        .attribute_importance
        .iter()
        .copied()
        .enumerate()
        .collect();
    attrs.sort_by(|a, b| b.1.total_cmp(&a.1));
    for (idx, imp) in attrs {
        println!("   {:<18} {:.4}", schema.name(idx), imp);
    }

    println!("\nAttribute weights of the logistic-regression model itself:");
    for (idx, w) in matcher.attribute_weights().iter().enumerate() {
        println!("   {:<18} {:+.4}", schema.name(idx), w);
    }

    println!("\nTokens most consistently supporting MATCH:");
    for t in summary.match_tokens.iter().take(8) {
        println!(
            "   {:<28} mean {:+.4} (seen {}x)",
            t.key, t.mean_weight, t.count
        );
    }
    println!("\nTokens most consistently supporting NON-MATCH:");
    for t in summary.non_match_tokens.iter().take(8) {
        println!(
            "   {:<28} mean {:+.4} (seen {}x)",
            t.key, t.mean_weight, t.count
        );
    }
}
