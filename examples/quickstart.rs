//! Quickstart — the paper's Figure 1 / Examples 1.1-1.2 walked end to end.
//!
//! Builds the camera-vs-leather-case record from the paper, trains the
//! logistic-regression EM model on a synthetic product dataset, and prints
//! the two landmark explanations with their top-3 tokens.
//!
//! Run with: `cargo run --release --example quickstart`

use landmark_explanation::prelude::*;

fn main() {
    // A product dataset in the same domain as the record we explain.
    let dataset = MagellanBenchmark::scaled(0.2).generate(DatasetId::TAb);
    let schema = dataset.schema().clone();
    println!(
        "Training the EM model (logistic regression) on {} records...",
        dataset.len()
    );
    let matcher = LogisticMatcher::train(&dataset, &MatcherConfig::default());

    // The record of Figure 1: a digital camera vs a leather case.
    let record = EntityPair::new(
        Entity::new(vec![
            "sonix digital camera with lens kit dslra200w",
            "sonix alpha digital slr camera with lens kit dslra200w 10.2 megapixels",
            "849.99",
        ]),
        Entity::new(vec![
            "nikor digital camera leather case 5811",
            "leather black",
            "7.99",
        ]),
    );

    let p = matcher.predict_proba(&schema, &record);
    println!("\nRecord to explain:\n{}", record.display_with(&schema));
    println!(
        "EM model match probability: {p:.3} -> {}",
        if p >= 0.5 { "MATCH" } else { "NON-MATCH" }
    );

    // Landmark Explanation: two explanations, one per landmark.
    let explainer = LandmarkExplainer::default();
    let dual = explainer.explain(&matcher, &schema, &record);

    for le in dual.both() {
        println!(
            "\n=== Landmark: {} entity (perturbing the {} entity, {:?} generation) ===",
            le.landmark, le.varying, le.strategy
        );
        println!("{}", le.explanation.render_top_k(&schema, 3));
        let injected = le.injected_token_weights();
        if !injected.is_empty() {
            println!("-- injected landmark tokens that would push towards match:");
            let mut best: Vec<_> = injected.into_iter().filter(|t| t.weight > 0.0).collect();
            best.sort_by(|a, b| b.weight.total_cmp(&a.weight));
            for tw in best.into_iter().take(3) {
                println!(
                    "   {}/{}: {:+.4}",
                    schema.name(tw.token.attribute),
                    tw.token.text,
                    tw.weight
                );
            }
        }
    }

    println!(
        "\nInterpretation: positive weights support MATCH, negative weights support NON-MATCH."
    );
}
