//! Counterfactual records: "what would have to change for this pair to
//! match?"
//!
//! Section 4.3 of the paper argues that the interesting tokens of a
//! non-matching record are those that would flip the model's decision if
//! shared. This example turns a landmark explanation into an explicit
//! minimal edit: tokens to remove from / add to the varying entity such
//! that the EM model changes its mind.
//!
//! Run with: `cargo run --release --example counterfactuals`

use landmark_explanation::landmark::{
    counterfactual, CounterfactualConfig, Edit, GenerationStrategy, LandmarkConfig,
    LandmarkExplainer,
};
use landmark_explanation::prelude::*;

fn main() {
    let dataset = MagellanBenchmark::scaled(0.2).generate(DatasetId::SWa);
    let schema = dataset.schema().clone();
    println!("Training the EM model on {} records...", dataset.len());
    let matcher = LogisticMatcher::train(&dataset, &MatcherConfig::default());

    // A hard non-match: predicted non-matching, but with shared tokens.
    let record = dataset
        .records()
        .iter()
        .filter(|r| !r.label)
        .map(|r| (matcher.predict_proba(&schema, &r.pair), r.pair.clone()))
        .filter(|(p, _)| *p < 0.5)
        .max_by(|a, b| a.0.total_cmp(&b.0))
        .expect("non-match exists")
        .1;

    println!("\nRecord:\n{}", record.display_with(&schema));
    println!(
        "Model probability: {:.3} -> NON-MATCH",
        matcher.predict_proba(&schema, &record)
    );

    let explainer = LandmarkExplainer::new(LandmarkConfig {
        strategy: GenerationStrategy::DoubleEntity,
        n_samples: 500,
        ..Default::default()
    });
    let le = explainer.explain_with_landmark(&matcher, &schema, &record, EntitySide::Left);
    let cf = counterfactual(
        &matcher,
        &schema,
        &record,
        &le,
        &CounterfactualConfig {
            max_edits: 12,
            ..Default::default()
        },
    );

    println!("\nCounterfactual edits to the RIGHT entity (left is the landmark):");
    for edit in &cf.edits {
        match edit {
            Edit::Add(t) => println!("   + add    {}/{:?}", schema.name(t.attribute), t.text),
            Edit::Remove(t) => println!("   - remove {}/{:?}", schema.name(t.attribute), t.text),
        }
    }
    println!(
        "\nEdited record probability: {:.3} -> {}",
        cf.probability,
        if cf.probability >= 0.5 {
            "MATCH"
        } else {
            "NON-MATCH"
        }
    );
    println!("Flipped: {}", cf.flipped);
    println!(
        "\nEdited right entity: {}",
        cf.record.right.display_with(&schema)
    );
}
