//! Compares all four explanation techniques on the same record.
//!
//! The paper's Tables 2-4 compare Landmark Explanation (Single / Double)
//! against LIME / Mojito Drop and Mojito Copy. This example makes the
//! comparison tangible on a single non-matching record: LIME spreads
//! weight across both entities, Mojito Copy assigns one weight per
//! attribute, and Landmark Explanation separates the two perspectives.
//!
//! Run with: `cargo run --release --example compare_explainers`

use landmark_explanation::eval::{ExplainedRecord, Technique};
use landmark_explanation::prelude::*;

fn show(schema: &Schema, label: &str, views: &[ExplainedRecord]) {
    println!("\n=== {label} ===");
    for (i, view) in views.iter().enumerate() {
        if views.len() > 1 {
            println!(
                "-- view {} (landmark = {})",
                i + 1,
                if i == 0 { "left" } else { "right" }
            );
        }
        let mut ranked: Vec<_> = view.removable.iter().collect();
        ranked.sort_by(|a, b| b.2.abs().total_cmp(&a.2.abs()));
        for (side, token, weight) in ranked.into_iter().take(5) {
            println!(
                "   {}_{}/{}: {:+.4}",
                side.prefix(),
                schema.name(token.attribute),
                token.text,
                weight
            );
        }
    }
}

fn main() {
    let dataset = MagellanBenchmark::scaled(0.2).generate(DatasetId::SWa);
    let schema = dataset.schema().clone();
    println!("Training the EM model on {} records...", dataset.len());
    let matcher = LogisticMatcher::train(&dataset, &MatcherConfig::default());

    // Pick a non-matching record with some shared tokens (a hard negative).
    let record = dataset
        .records()
        .iter()
        .filter(|r| !r.label)
        .find(|r| {
            use std::collections::HashSet;
            let a: HashSet<&str> = r
                .pair
                .left
                .values()
                .flat_map(str::split_whitespace)
                .collect();
            let b: HashSet<&str> = r
                .pair
                .right
                .values()
                .flat_map(str::split_whitespace)
                .collect();
            a.intersection(&b).count() >= 2
        })
        .expect("hard negative exists")
        .pair
        .clone();

    println!("\nRecord:\n{}", record.display_with(&schema));
    println!(
        "Model probability: {:.3}",
        matcher.predict_proba(&schema, &record)
    );

    for technique in Technique::all() {
        let views = landmark_explanation::eval::technique::explain_record(
            technique, &matcher, &schema, &record, 500, 0,
        );
        show(&schema, technique.label(), &views);
    }

    println!(
        "\nNote how Mojito Copy gives every token of an attribute the same weight\n\
         (attribute-atomic perturbation), while the landmark techniques rank\n\
         individual tokens of the varying entity."
    );
}
